// Micro-benchmarks (google-benchmark) for the checkpointing substrate:
// per-gate cost by mode, store-tracking cost (HTM fast path vs STM
// first-write-filtered logging), gate dispatch, rollback primitives, and
// stack snapshots.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "core/stack_snapshot.h"
#include "htm/htm.h"
#include "interpose/fir.h"
#include "mem/tracked.h"
#include "mem/undo_log.h"
#include "obs/cli.h"
#include "obs/trace_ring.h"
#include "stm/stm.h"

namespace fir {
namespace {

void BM_UndoLogAppendSmall(benchmark::State& state) {
  UndoLog log;
  std::uint64_t word = 0;
  for (auto _ : state) {
    log.record(&word, sizeof(word));
    if (log.entry_count() >= 4096) log.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UndoLogAppendSmall);

void BM_UndoLogRollback(benchmark::State& state) {
  const std::size_t entries = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> region(entries);
  UndoLog log;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < entries; ++i)
      log.record(&region[i], sizeof(region[i]));
    state.ResumeTiming();
    log.rollback();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(entries));
}
BENCHMARK(BM_UndoLogRollback)->Arg(64)->Arg(1024)->Arg(8192);

void BM_HtmStoreSameLine(benchmark::State& state) {
  HtmConfig config;
  config.interrupt_abort_per_store = 0.0;
  HtmContext htm(config);
  htm.begin();
  alignas(kCacheLineBytes) std::uint64_t word = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm.record_store(&word, sizeof(word)));
  }
  htm.commit();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HtmStoreSameLine);

void BM_HtmStoreNewLines(benchmark::State& state) {
  HtmConfig config;
  config.interrupt_abort_per_store = 0.0;
  config.max_write_lines = 4096;
  config.max_lines_per_set = 4096;
  HtmContext htm(config);
  std::vector<char> region(2048 * kCacheLineBytes);
  std::size_t at = 0;
  htm.begin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm.record_store(&region[at], 1));
    at += kCacheLineBytes;
    if (at >= region.size()) {
      htm.commit();
      htm.begin();
      at = 0;
    }
  }
  htm.commit();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HtmStoreNewLines);

void BM_StmStoreWord(benchmark::State& state) {
  StmContext stm;
  stm.begin();
  std::uint64_t word = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stm.record_store(&word, sizeof(word)));
    if (stm.log_entries() >= 4096) {
      stm.commit();
      stm.begin();
    }
  }
  stm.commit();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StmStoreWord);

void BM_StmStoreBulk16K(benchmark::State& state) {
  StmContext stm;
  std::vector<char> buf(16 * 1024);
  for (auto _ : state) {
    stm.begin();
    stm.record_store(buf.data(), buf.size());
    stm.commit();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_StmStoreBulk16K);

void BM_StmStoreRepeated(benchmark::State& state) {
  // Hot-loop pattern the first-write filter targets: the same word stored
  // over and over inside one transaction. Only the first store per
  // transaction reaches the undo log; the rest take the gate's inlined
  // filter probe. Transaction length matches the pre-filter baseline
  // (one commit per 4096 stores).
  StmContext stm;
  stm.begin();
  stm.bind_gate();
  alignas(kCacheLineBytes) std::uint64_t word = 0;
  std::size_t stores_in_tx = 0;
  for (auto _ : state) {
    StoreGate::record(&word, sizeof(word));
    word += 1;
    benchmark::DoNotOptimize(word);
    if (++stores_in_tx >= 4096) {
      stores_in_tx = 0;
      stm.commit();
      stm.begin();
    }
  }
  StoreGate::set_recorder(nullptr);
  stm.commit();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StmStoreRepeated);

void BM_StmStoreScatter(benchmark::State& state) {
  // Worst case for the filter: every store touches a line not yet seen in
  // the transaction, so every probe misses and the full log append still
  // runs. Guards the filter's overhead on unfriendly workloads.
  StmContext stm;
  std::vector<std::uint8_t> region(512 * kCacheLineBytes);
  std::size_t at = 0;
  stm.begin();
  stm.bind_gate();
  for (auto _ : state) {
    StoreGate::record(region.data() + at, 8);
    region[at] += 1;
    at += kCacheLineBytes;
    if (at + 8 >= region.size()) {
      at = 0;
      stm.commit();
      stm.begin();
    }
  }
  StoreGate::set_recorder(nullptr);
  stm.commit();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StmStoreScatter);

void BM_StoreGateDispatch(benchmark::State& state) {
  // Arg(0): legacy virtual dispatch through StoreRecorder::record_store.
  // Arg(1): devirtualized mode-tag gate (bind_gate) — the HTM same-line
  // check runs inline with no indirect call.
  const bool devirt = state.range(0) != 0;
  HtmConfig config;
  config.interrupt_abort_per_store = 0.0;
  HtmContext htm(config);
  htm.begin();
  if (devirt) {
    htm.bind_gate();
  } else {
    StoreGate::set_recorder(&htm);
  }
  alignas(kCacheLineBytes) std::uint64_t word = 0;
  for (auto _ : state) {
    StoreGate::record(&word, sizeof(word));
    word += 1;
    benchmark::DoNotOptimize(word);
  }
  StoreGate::set_recorder(nullptr);
  htm.commit();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(devirt ? "devirt" : "virtual");
}
BENCHMARK(BM_StoreGateDispatch)->Arg(0)->Arg(1);

void BM_StackSnapshot(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  std::vector<char> fake_stack(depth + 64);
  StackSnapshot snapshot;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        snapshot.capture(fake_stack.data(), fake_stack.data() + depth));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_StackSnapshot)->Arg(512)->Arg(2048)->Arg(8192);

void BM_GateRoundTrip(benchmark::State& state) {
  // Full gate cost: pre_call + env call + begin (snapshot + recorder).
  const PolicyKind kind = static_cast<PolicyKind>(state.range(0));
  TxManagerConfig config;
  config.policy.kind = kind;
  config.htm.interrupt_abort_per_store = 0.0;
  Fx fx(config);
  FIR_ANCHOR(fx);
  tracked<std::uint64_t> counter;
  for (auto _ : state) {
    const int rc = FIR_SETSOCKOPT(fx, -1, 0);  // EBADF: no fd churn
    benchmark::DoNotOptimize(rc);
    counter += 1;
  }
  FIR_QUIESCE(fx);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(policy_kind_name(kind));
}
BENCHMARK(BM_GateRoundTrip)
    ->Arg(static_cast<int>(PolicyKind::kUnprotected))
    ->Arg(static_cast<int>(PolicyKind::kHtmOnly))
    ->Arg(static_cast<int>(PolicyKind::kStmOnly))
    ->Arg(static_cast<int>(PolicyKind::kAdaptive));

void BM_GateTracing(benchmark::State& state) {
  // Tracing-on vs tracing-off gate cost (ISSUE acceptance: the disabled
  // check must stay within measurement noise of the pre-tracing baseline;
  // compare against BM_GateRoundTrip/adaptive for the no-ring reference).
  const bool traced = state.range(0) != 0;
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kAdaptive;
  config.htm.interrupt_abort_per_store = 0.0;
  config.obs.trace_enabled = traced;
  Fx fx(config);
  FIR_ANCHOR(fx);
  tracked<std::uint64_t> counter;
  for (auto _ : state) {
    const int rc = FIR_SETSOCKOPT(fx, -1, 0);
    benchmark::DoNotOptimize(rc);
    counter += 1;
  }
  FIR_QUIESCE(fx);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(traced ? "tracing-on" : "tracing-off");
}
BENCHMARK(BM_GateTracing)->Arg(0)->Arg(1);

void BM_TraceRingEmit(benchmark::State& state) {
  // Raw cost of one enabled emit: slot reservation + 64-byte payload write.
  obs::TraceRing ring(4096);
  ring.set_enabled(true);
  std::uint64_t t = 0;
  for (auto _ : state) {
    ring.emit(obs::EventKind::kTxCommit, 7, ++t, "htm", 1, 2);
  }
  benchmark::DoNotOptimize(ring.total_emitted());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceRingEmit);

void BM_TxBeginQuiescent(benchmark::State& state) {
  // Steady-state cost of a gated call at a quiescent site — the tx_begin
  // hot path the checkpoint fast path targets. Arg = run budget:
  //   1  -> seed behaviour, one full checkpoint (snapshot + stm begin +
  //         filter epoch) per call;
  //   N  -> coalescing, one checkpoint amortized over N quiescent calls.
  // Reported counters: checkpoints/call (stm begins) and snapshot bytes
  // actually copied per call (incremental capture elides the clean tail).
  const auto run_budget = static_cast<std::uint32_t>(state.range(0));
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kStmOnly;  // every begin checkpoints
  config.coalesce_max = run_budget;
  Fx fx(config);
  FIR_ANCHOR(fx);
  for (auto _ : state) {
    const int rc = FIR_SETSOCKOPT(fx, -1, 0);  // EBADF: no fd churn
    benchmark::DoNotOptimize(rc);
  }
  FIR_QUIESCE(fx);
  const auto samples = fx.mgr().metrics().snapshot();  // publish collectors
  (void)samples;
  const double iters = static_cast<double>(state.iterations());
  state.counters["ckpt/call"] =
      static_cast<double>(fx.mgr().stm_stats().begun) / iters;
  state.counters["snapB/call"] = static_cast<double>(
      fx.mgr().metrics().counter("snapshot.bytes_copied").value()) / iters;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(run_budget <= 1 ? "per-call" : "coalesced");
}
BENCHMARK(BM_TxBeginQuiescent)->Arg(1)->Arg(8)->Arg(64);

__attribute__((noinline)) int quiescent_gate_deep(Fx& fx, std::uint64_t salt) {
  // Request-local live state between the anchor and the gate — the span a
  // real handler's checkpoint actually covers. A write every 512 bytes
  // spreads dirty cache lines through the whole frame, so each checkpoint
  // re-copies it (content-verified elision finds no clean suffix).
  char frame[4096];
  for (std::size_t off = 0; off < sizeof(frame); off += 512)
    frame[off] = static_cast<char>(salt + off);
  const int rc = static_cast<int>(FIR_SETSOCKOPT(fx, -1, 0));
  benchmark::DoNotOptimize(&frame[0]);
  return rc;
}

void BM_TxBeginQuiescentDeep(benchmark::State& state) {
  // Same shape as BM_TxBeginQuiescent but with a 4 KiB live frame under the
  // anchor: the representative case for coalescing, where the per-call
  // checkpoint is dominated by the stack copy that a run pays only once.
  const auto run_budget = static_cast<std::uint32_t>(state.range(0));
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kStmOnly;
  config.coalesce_max = run_budget;
  Fx fx(config);
  FIR_ANCHOR(fx);
  std::uint64_t salt = 0;
  for (auto _ : state) {
    const int rc = quiescent_gate_deep(fx, ++salt);
    benchmark::DoNotOptimize(rc);
  }
  FIR_QUIESCE(fx);
  const auto samples = fx.mgr().metrics().snapshot();
  (void)samples;
  const double iters = static_cast<double>(state.iterations());
  state.counters["ckpt/call"] =
      static_cast<double>(fx.mgr().stm_stats().begun) / iters;
  state.counters["snapB/call"] = static_cast<double>(
      fx.mgr().metrics().counter("snapshot.bytes_copied").value()) / iters;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(run_budget <= 1 ? "per-call" : "coalesced");
}
BENCHMARK(BM_TxBeginQuiescentDeep)->Arg(1)->Arg(8)->Arg(64);

void BM_StackSnapshotRecapture(benchmark::State& state) {
  // Incremental capture: recapture the SAME extent with only `Arg` dirty
  // bytes at the deep end of a 64 KiB frame. The content-verified suffix is
  // elided; Arg(65536) dirties every block — the full-copy worst case, which
  // also prices the verification scan itself.
  const std::size_t dirty = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kFrame = 64 * 1024;
  std::vector<char> region(kFrame, 'a');
  StackSnapshot snapshot;
  benchmark::DoNotOptimize(
      snapshot.capture(region.data(), region.data() + kFrame));
  std::uint8_t stamp = 0;
  for (auto _ : state) {
    if (dirty > 0) std::memset(region.data(), ++stamp, dirty);
    benchmark::DoNotOptimize(
        snapshot.capture(region.data(), region.data() + kFrame));
  }
  // Logical bytes protected per capture, not bytes copied: throughput here
  // shows the elision win at equal protection.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kFrame));
  state.counters["copied/cap"] =
      static_cast<double>(snapshot.bytes_copied()) /
      static_cast<double>(state.iterations() + 1);
}
BENCHMARK(BM_StackSnapshotRecapture)->Arg(0)->Arg(256)->Arg(65536);

void BM_CrashRecoveryRoundTrip(benchmark::State& state) {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kStmOnly;
  Fx fx(config);
  FIR_ANCHOR(fx);
  for (auto _ : state) {
    const int fd = FIR_SOCKET(fx);
    if (fd >= 0) raise_crash(CrashKind::kSegv);  // retry, then divert
    benchmark::DoNotOptimize(fd);
  }
  FIR_QUIESCE(fx);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CrashRecoveryRoundTrip);

}  // namespace
}  // namespace fir

// Expanded BENCHMARK_MAIN so the FIR_TRACE_* flags are stripped before
// google-benchmark's own argument parsing sees them.
int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
