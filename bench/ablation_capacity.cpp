// Ablation: sensitivity to the modeled HTM write-set capacity.
//
// The TSX model bounds transactions at max_write_lines (DESIGN.md SS5b).
// Smaller capacities abort more transactions and push the adaptive policy
// to demote more sites; the recovery guarantees are unaffected.
#include <cstdio>

#include "bench_util.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Ablation: HTM write-set capacity (lines) on miniginx under load.\n\n");

  TextTable table;
  table.set_header({"capacity (lines)", "HTM aborts", "sites demoted",
                    "overhead vs vanilla"});
  double previous_aborts = 1e9;
  bool pass = true;
  for (const std::size_t lines : {32u, 64u, 128u, 256u, 512u}) {
    TxManagerConfig config = firestarter_config();
    config.htm.max_write_lines = lines;

    auto server = make_server("miniginx", config);
    if (server == nullptr) return 1;
    measure_throughput(*server, 6000, 8, 42);
    const HtmStats& htm = server->fx().mgr().htm_stats();
    const double abort_pct =
        htm.begun == 0 ? 0.0
                       : 100.0 * static_cast<double>(htm.aborted_total()) /
                             static_cast<double>(htm.begun);
    int demoted = 0;
    for (const Site& site : server->fx().mgr().sites().all())
      demoted += site.gate.sticky_stm ? 1 : 0;
    server->stop();

    const double overhead_pct =
        100.0 * median_overhead("miniginx", config, 6000, 8, 5);
    table.add_row({std::to_string(lines),
                   format_double(abort_pct, 3) + "%",
                   std::to_string(demoted),
                   format_double(overhead_pct, 1) + "%"});
    // Monotonicity: more capacity can only reduce capacity aborts.
    pass &= abort_pct <= previous_aborts + 0.05;
    previous_aborts = abort_pct;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check (abort rate non-increasing in capacity): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
