// Durable write-path throughput: O(delta) barriers + group commit.
//
// Two measurements, both machine-independent (virtual time and VFS
// persist-stats, not wall clock), emitted as a JSON report consumed by
// tools/check_bench_regression.py --durable (baseline: BENCH_durable.json):
//
//   * barrier scaling — one minikv under FIR_FSYNC_POLICY=always appends
//     SETs in stages while the AOF grows; each stage reports
//     bytes_synced/barrier from Vfs::persist_stats(). With incremental
//     barriers the cost per barrier is the appended record, independent of
//     log size, so the stage-over-stage growth ratio is gated ~flat. A
//     regression to full-image copies makes the last stage cost the whole
//     AOF and the ratio explode.
//
//   * group-commit win — the same pipelined SET workload under policy
//     "always" (one barrier per mutation) vs policy "batch" + group commit
//     (acks defer, one barrier retires the batch). Throughput is ops per
//     VIRTUAL second — the env clock prices an fsync at 5000ns vs 150ns
//     per plain syscall, so the ratio isolates barrier count. The
//     group-commit arm must win by the baseline's floor (>= 3x), and a
//     clean crash image taken after the run must recover every acked SET
//     (lost_acked must be 0: group commit may not weaken acked-durable).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/minikv.h"
#include "workload/kv_client.h"

namespace fir {
namespace {

struct Options {
  int stages = 4;            // barrier-scaling stages
  int sets_per_stage = 1500; // appends per stage
  int batches = 150;         // pipelined batches per throughput arm
  int depth = 16;            // SETs per pipelined batch
  std::string out = "BENCH_durable_results.json";
};

TxManagerConfig bench_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;  // no faults injected; keep it lean
  return c;
}

std::string set_command(const char* prefix, unsigned i) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "SET %s:%06u v%06u-0123456789abcdef0123456789abcdef"
                "0123456789abcdef",
                prefix, i, i);
  return buf;
}

/// Sends `depth` commands pipelined, then drains `depth` replies. Exits the
/// process on a transport error (the bench has no legitimate failure mode).
void pipelined_batch(Minikv& kv, KvClient& client,
                     const std::vector<std::string>& commands) {
  for (const std::string& cmd : commands) {
    if (!client.send_command(cmd)) {
      std::fprintf(stderr, "durable_throughput: send failed\n");
      std::exit(1);
    }
  }
  std::string reply;
  for (std::size_t got = 0; got < commands.size();) {
    kv.run_once();
    int rc;
    while ((rc = client.try_read_reply(reply)) == 1) {
      if (reply.rfind("-ERR", 0) == 0 || reply.rfind("-OOM", 0) == 0) {
        std::fprintf(stderr, "durable_throughput: error reply %s\n",
                     reply.c_str());
        std::exit(1);
      }
      if (++got == commands.size()) break;
    }
    if (rc < 0) {
      std::fprintf(stderr, "durable_throughput: connection lost\n");
      std::exit(1);
    }
  }
}

struct StageResult {
  std::uint64_t aof_bytes_before = 0;  // log size entering the stage
  std::uint64_t barriers = 0;
  std::uint64_t bytes_synced = 0;
  double bytes_per_barrier = 0.0;
};

/// Barrier scaling: stages of appends under policy "always"; per-stage
/// bytes_synced/barrier must not grow with the AOF.
std::vector<StageResult> run_barrier_scaling(const Options& opt) {
  Minikv kv(bench_cfg());
  kv.enable_aof(true);
  kv.set_fsync_policy(FsyncPolicy::kAlways);
  kv.set_group_commit({0, 0});
  if (!kv.start(0).is_ok()) {
    std::fprintf(stderr, "durable_throughput: scaling server start failed\n");
    std::exit(1);
  }
  KvClient client(kv.fx().env(), kv.port());
  if (!client.connect()) std::exit(1);

  std::vector<StageResult> stages;
  unsigned next_key = 0;
  for (int s = 0; s < opt.stages; ++s) {
    StageResult stage;
    const auto aof = kv.fx().env().vfs().lookup("/data/appendonly.aof");
    stage.aof_bytes_before = aof != nullptr ? aof->data.size() : 0;
    const PersistStats before = kv.fx().env().vfs().persist_stats();
    std::vector<std::string> batch;
    for (int i = 0; i < opt.sets_per_stage; ++i) {
      // Keys cycle mod 2000 to stay under the db's slot cap; the AOF still
      // grows by one record per SET, which is what the stage measures.
      batch.assign(1, set_command("scale", next_key++ % 2000));
      pipelined_batch(kv, client, batch);
    }
    const PersistStats after = kv.fx().env().vfs().persist_stats();
    stage.barriers = after.barriers - before.barriers;
    stage.bytes_synced = after.bytes_synced - before.bytes_synced;
    stage.bytes_per_barrier =
        stage.barriers > 0
            ? static_cast<double>(stage.bytes_synced) /
                  static_cast<double>(stage.barriers)
            : 0.0;
    stages.push_back(stage);
  }
  kv.stop();
  return stages;
}

struct ArmResult {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t virtual_ns = 0;
  std::uint64_t barriers = 0;
  std::uint64_t group_commits = 0;
  std::uint64_t acks_deferred = 0;
  std::uint64_t lost_acked = 0;  // acked SETs missing after clean recovery
  double ops_per_virtual_sec = 0.0;
};

ArmResult run_throughput_arm(const Options& opt, const char* name,
                             FsyncPolicy policy, std::uint32_t gc_max) {
  ArmResult r;
  r.name = name;
  Minikv kv(bench_cfg());
  kv.enable_aof(true);
  kv.set_fsync_policy(policy);
  kv.set_group_commit({gc_max, 0});
  if (!kv.start(0).is_ok()) {
    std::fprintf(stderr, "durable_throughput: arm %s start failed\n", name);
    std::exit(1);
  }
  KvClient client(kv.fx().env(), kv.port());
  if (!client.connect()) std::exit(1);

  // Warmup: one batch outside the measured window settles connection setup.
  std::vector<std::string> batch;
  for (int i = 0; i < opt.depth; ++i)
    batch.push_back(set_command("warm", static_cast<unsigned>(i)));
  pipelined_batch(kv, client, batch);

  const PersistStats before = kv.fx().env().vfs().persist_stats();
  const std::uint64_t t0 = kv.fx().env().clock().now_ns();
  unsigned next_key = 0;
  for (int b = 0; b < opt.batches; ++b) {
    batch.clear();
    for (int i = 0; i < opt.depth; ++i)
      batch.push_back(set_command("bench", next_key++));
    pipelined_batch(kv, client, batch);
  }
  const std::uint64_t t1 = kv.fx().env().clock().now_ns();
  const PersistStats after = kv.fx().env().vfs().persist_stats();

  r.ops = static_cast<std::uint64_t>(opt.batches) *
          static_cast<std::uint64_t>(opt.depth);
  r.virtual_ns = t1 - t0;
  r.barriers = after.barriers - before.barriers;
  r.group_commits = kv.group_commit().enabled() ? r.barriers : 0;
  r.ops_per_virtual_sec =
      r.virtual_ns > 0
          ? static_cast<double>(r.ops) * 1e9 / static_cast<double>(r.virtual_ns)
          : 0.0;

  // Acked-durable audit: a clean crash image (write-back boundary, no torn
  // tail) must recover every SET whose reply the client read.
  Vfs image = kv.fx().env().vfs().crash_image();
  Minikv recovered(bench_cfg());
  recovered.enable_aof(true);
  recovered.fx().env().vfs().import_from(image);
  if (!recovered.start(0).is_ok()) {
    std::fprintf(stderr, "durable_throughput: arm %s recovery failed\n", name);
    std::exit(1);
  }
  for (unsigned i = 0; i < next_key; ++i) {
    char key[64];
    std::snprintf(key, sizeof(key), "bench:%06u", i);
    if (!recovered.db().contains(key)) ++r.lost_acked;
  }
  recovered.stop();
  kv.stop();
  return r;
}

int main_impl(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--stages=", 9) == 0) {
      opt.stages = std::atoi(a + 9);
    } else if (std::strncmp(a, "--sets-per-stage=", 17) == 0) {
      opt.sets_per_stage = std::atoi(a + 17);
    } else if (std::strncmp(a, "--batches=", 10) == 0) {
      opt.batches = std::atoi(a + 10);
    } else if (std::strncmp(a, "--depth=", 8) == 0) {
      opt.depth = std::atoi(a + 8);
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      opt.out = a + 6;
    } else {
      std::fprintf(stderr,
                   "usage: durable_throughput [--stages=N] "
                   "[--sets-per-stage=N] [--batches=N] [--depth=N] "
                   "[--out=FILE]\n");
      return 2;
    }
  }

  const std::vector<StageResult> stages = run_barrier_scaling(opt);
  std::printf("%-8s %14s %10s %14s %18s\n", "stage", "aof_bytes", "barriers",
              "bytes_synced", "bytes_per_barrier");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    std::printf("%-8zu %14llu %10llu %14llu %18.1f\n", i,
                static_cast<unsigned long long>(stages[i].aof_bytes_before),
                static_cast<unsigned long long>(stages[i].barriers),
                static_cast<unsigned long long>(stages[i].bytes_synced),
                stages[i].bytes_per_barrier);
  }

  const ArmResult always =
      run_throughput_arm(opt, "always", FsyncPolicy::kAlways, 0);
  const ArmResult grouped = run_throughput_arm(
      opt, "group-commit", FsyncPolicy::kBatch,
      static_cast<std::uint32_t>(opt.depth));
  std::printf("\n%-14s %10s %14s %10s %14s %10s\n", "arm", "ops",
              "virtual_ns", "barriers", "ops/vsec", "lost");
  for (const ArmResult* r : {&always, &grouped}) {
    std::printf("%-14s %10llu %14llu %10llu %14.0f %10llu\n", r->name.c_str(),
                static_cast<unsigned long long>(r->ops),
                static_cast<unsigned long long>(r->virtual_ns),
                static_cast<unsigned long long>(r->barriers),
                r->ops_per_virtual_sec,
                static_cast<unsigned long long>(r->lost_acked));
  }
  const double win = always.ops_per_virtual_sec > 0
                         ? grouped.ops_per_virtual_sec /
                               always.ops_per_virtual_sec
                         : 0.0;
  std::printf("group-commit win: %.2fx\n", win);

  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "durable_throughput: cannot write %s\n",
                 opt.out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"stages\": %d, \"sets_per_stage\": %d, "
               "\"batches\": %d, \"depth\": %d},\n",
               opt.stages, opt.sets_per_stage, opt.batches, opt.depth);
  std::fprintf(f, "  \"barrier_scaling\": [\n");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    std::fprintf(f,
                 "    {\"stage\": %zu, \"aof_bytes\": %llu, \"barriers\": "
                 "%llu, \"bytes_synced\": %llu, \"bytes_per_barrier\": "
                 "%.1f}%s\n",
                 i,
                 static_cast<unsigned long long>(stages[i].aof_bytes_before),
                 static_cast<unsigned long long>(stages[i].barriers),
                 static_cast<unsigned long long>(stages[i].bytes_synced),
                 stages[i].bytes_per_barrier,
                 i + 1 < stages.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"arms\": {\n");
  const ArmResult* arm_list[] = {&always, &grouped};
  for (std::size_t i = 0; i < 2; ++i) {
    const ArmResult& r = *arm_list[i];
    std::fprintf(f,
                 "    \"%s\": {\"ops\": %llu, \"virtual_ns\": %llu, "
                 "\"barriers\": %llu, \"ops_per_virtual_sec\": %.1f, "
                 "\"lost_acked\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.virtual_ns),
                 static_cast<unsigned long long>(r.barriers),
                 r.ops_per_virtual_sec,
                 static_cast<unsigned long long>(r.lost_acked),
                 i + 1 < 2 ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", opt.out.c_str());
  return 0;
}

}  // namespace
}  // namespace fir

int main(int argc, char** argv) { return fir::main_impl(argc, argv); }
