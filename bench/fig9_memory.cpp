// Figure 9: normalized mean memory overhead (RSS proxy) of HTM-only,
// STM-only and FIRestarter.
//
// RSS proxy = application heap peak + instrumentation state (stack-snapshot
// buffer, undo-log capacity, HTM write-set bookkeeping, compensation stash,
// per-site gate state) + modeled code duplication (the cloned HTM/STM code
// paths roughly double protected-region text; we charge a per-site constant
// per clone, documented in EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

namespace {
constexpr int kRequests = 2500;
constexpr int kConcurrency = 8;
/// Average compiled size of one protected code region (text bytes); each
/// instrumented variant (HTM clone, STM clone) adds one copy.
constexpr std::size_t kRegionTextBytes = 512;

std::size_t clones_for(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kHtmOnly: return 1;   // HTM clone only
    case PolicyKind::kStmOnly: return 1;   // STM clone only
    case PolicyKind::kUnprotected: return 0;
    default: return 2;                     // both clones + flow switches
  }
}

double memory_proxy(const std::string& name, const TxManagerConfig& config) {
  auto server = make_server(name, config);
  if (server == nullptr) return -1.0;
  measure_throughput(*server, kRequests, kConcurrency, 42);
  std::size_t bytes = server->resident_state_bytes();
  bytes += server->fx().env().stats().heap_peak_bytes;
  bytes += server->fx().env().vfs().total_bytes();
  bytes += server->fx().mgr().instrumentation_bytes();
  bytes += server->fx().mgr().sites().size() * kRegionTextBytes *
           clones_for(config.policy.kind);
  server->stop();
  return static_cast<double>(bytes);
}

}  // namespace

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Figure 9: normalized mean memory overhead (RSS proxy) vs vanilla.\n"
      "Paper: overhead mainly from instrumentation/code duplication;\n"
      "STM-only adds undo-log overhead beyond HTM-only.\n\n");

  TextTable table;
  table.set_header({"Server", "HTM-only", "STM-only", "FIRestarter"});
  bool pass = true;
  for (const std::string& name : server_names()) {
    const double base = memory_proxy(name, vanilla_config());
    const double htm = memory_proxy(name, htm_only_config());
    const double stm = memory_proxy(name, stm_only_config());
    const double firestarter = memory_proxy(name, firestarter_config());
    if (base <= 0.0) return 1;
    auto norm = [&](double v) { return format_double(v / base, 2) + "x"; };
    table.add_row(
        {paper_name(name), norm(htm), norm(stm), norm(firestarter)});
    // Shape: every protected variant costs more than vanilla; overhead is
    // bounded (paper shows modest normalized increases).
    pass &= htm >= base && stm >= base && firestarter >= base;
    pass &= firestarter / base < 2.0;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check (protected variants >= vanilla, FIRestarter\n"
              "under 3x): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
