// Table II: recoverability classes of the modeled standard-library
// functions and their fault-injection divertibility, plus the subset each
// evaluated server actually exercises.
#include <cstdio>
#include <set>

#include "bench_util.h"
#include "libmodel/catalog.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  const auto& catalog = LibraryCatalog::instance();

  std::printf("Table II: library functions classified by recoverability and\n"
              "ability to divert (faulty) execution via fault injection.\n\n");
  TextTable table;
  table.set_header({"Recoverability", "divert possible", "divert NOT possible",
                    "Total", "paper"});
  struct Row {
    Recoverability r;
    const char* paper;
  };
  const Row rows[] = {
      {Recoverability::kReversible, "23 / 0 / 23"},
      {Recoverability::kIdempotent, "9 / 26 / 35"},
      {Recoverability::kDeferrable, "5 / 2 / 7"},
      {Recoverability::kStateRestore, "12 / 8 / 20"},
      {Recoverability::kIrrecoverable, "12 / 4 / 16"},
  };
  int total_yes = 0, total_no = 0;
  for (const Row& row : rows) {
    const int yes = catalog.count(row.r, true);
    const int no = catalog.count(row.r, false);
    total_yes += yes;
    total_no += no;
    table.add_row({std::string(recoverability_name(row.r)),
                   std::to_string(yes), std::to_string(no),
                   std::to_string(yes + no), row.paper});
  }
  table.add_separator();
  table.add_row({"Total", std::to_string(total_yes), std::to_string(total_no),
                 std::to_string(total_yes + total_no), "61 / 40 / 101"});
  std::printf("%s\n", table.render().c_str());

  // Per-server usage: which modeled functions each server's test-suite run
  // actually exercises (gated sites + embedded calls).
  std::printf("Library functions exercised per server (standard suite):\n\n");
  TextTable usage;
  usage.set_header({"Server", "functions used", "divertible",
                    "irrecoverable"});
  std::set<std::string> union_used;
  for (const std::string& name : server_names()) {
    auto server = make_server(name, firestarter_config());
    if (server == nullptr) return 1;
    run_suite_for(*server, 1);
    std::set<std::string> used;
    int divertible = 0, irrecoverable = 0;
    for (const Site& site : server->fx().mgr().sites().all()) {
      if (site.stats.transactions == 0 && site.stats.embedded_calls == 0)
        continue;
      if (!used.insert(site.function).second) continue;
      union_used.insert(site.function);
      const LibFunctionSpec* spec = catalog.find(site.function);
      if (spec != nullptr && spec->divertible) ++divertible;
      if (spec != nullptr &&
          spec->recoverability == Recoverability::kIrrecoverable)
        ++irrecoverable;
    }
    usage.add_row({paper_name(name), std::to_string(used.size()),
                   std::to_string(divertible),
                   std::to_string(irrecoverable)});
    server->stop();
  }
  usage.add_separator();
  usage.add_row({"Union", std::to_string(union_used.size()), "", ""});
  std::printf("%s", usage.render().c_str());
  return 0;
}
