// Figure 5: recovery latency across fault-triggered executions.
//
// For every fail-stop experiment of the Table IV campaign the runtime
// records the time from crash entry (the signal-handler moment) to handing
// execution back to the application. The paper reports tens of
// milliseconds with sub-second outliers on real hardware; the simulated
// environment recovers in microseconds — the figure reports the measured
// distribution and its shape (STM undo-log depth drives the tail).
#include <cstdio>

#include "bench_util.h"
#include "common/histogram.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

namespace {

Histogram collect_latencies(const std::string& name) {
  Histogram all;
  const ServerFactory factory = factory_for(name, firestarter_config());
  const std::vector<Marker> targets = profile_markers(factory);
  for (const Marker& target : targets) {
    auto server = factory();
    if (server == nullptr) continue;
    run_suite_for(*server, 1);
    MarkerId id = kInvalidMarker;
    for (const Marker& m : server->fx().hsfi().markers())
      if (m.name == target.name && m.location == target.location) id = m.id;
    if (id == kInvalidMarker) continue;
    server->fx().mgr().reset_stats();
    server->fx().hsfi().arm(
        FaultPlan{id, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
    run_suite_for(*server, 1);
    all.merge(server->fx().mgr().recovery_latency());
    server->fx().hsfi().disarm();
    server->stop();
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Figure 5: recovery latency distribution per server (microseconds).\n"
      "Paper shape: typical latencies tens of ms on real hardware, outliers\n"
      "below 1 s; the simulated substrate recovers in the us range — the\n"
      "property reproduced is the SHAPE: tight distribution, bounded tail,\n"
      "all recoveries far below one second.\n\n");

  TextTable table;
  table.set_header({"Server", "recoveries", "mean us", "p50 us", "p95 us",
                    "max us"});
  bool pass = true;
  for (const std::string& name : web_server_names()) {
    const Histogram h = collect_latencies(name);
    if (h.empty()) {
      table.add_row({paper_name(name), "0", "-", "-", "-", "-"});
      pass = false;
      continue;
    }
    auto us = [](double seconds) { return format_double(seconds * 1e6, 1); };
    table.add_row({paper_name(name), std::to_string(h.count()),
                   us(h.mean()), us(h.percentile(50)), us(h.percentile(95)),
                   us(h.max())});
    pass &= h.max() < 1.0;  // every recovery under a second
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check (all recoveries < 1 s): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
