// Table II invariants: the catalog must reproduce the paper's class totals
// and divertibility splits exactly.
#include <gtest/gtest.h>

#include "libmodel/catalog.h"

namespace fir {
namespace {

TEST(CatalogTest, HasExactly101Functions) {
  EXPECT_EQ(LibraryCatalog::instance().all().size(), 101u);
}

struct ClassRow {
  Recoverability r;
  int divertible;
  int not_divertible;
};

// The paper's Table II, row by row.
constexpr ClassRow kPaperRows[] = {
    {Recoverability::kReversible, 23, 0},
    {Recoverability::kIdempotent, 9, 26},
    {Recoverability::kDeferrable, 5, 2},
    {Recoverability::kStateRestore, 12, 8},
    {Recoverability::kIrrecoverable, 12, 4},
};

class CatalogRowTest : public ::testing::TestWithParam<ClassRow> {};

TEST_P(CatalogRowTest, MatchesPaperTable2) {
  const auto& row = GetParam();
  const auto& catalog = LibraryCatalog::instance();
  EXPECT_EQ(catalog.count(row.r, true), row.divertible)
      << recoverability_name(row.r);
  EXPECT_EQ(catalog.count(row.r, false), row.not_divertible)
      << recoverability_name(row.r);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, CatalogRowTest,
                         ::testing::ValuesIn(kPaperRows));

TEST(CatalogTest, DivertibleTotalsMatchPaper) {
  const auto& catalog = LibraryCatalog::instance();
  int divertible = 0, not_divertible = 0;
  for (const auto& spec : catalog.all()) {
    (spec.divertible ? divertible : not_divertible)++;
  }
  EXPECT_EQ(divertible, 61);
  EXPECT_EQ(not_divertible, 40);
}

TEST(CatalogTest, LookupFindsKnownFunctions) {
  const auto& catalog = LibraryCatalog::instance();
  const LibFunctionSpec* setsockopt = catalog.find("setsockopt");
  ASSERT_NE(setsockopt, nullptr);
  EXPECT_EQ(setsockopt->recoverability, Recoverability::kIdempotent);
  EXPECT_TRUE(setsockopt->divertible);
  EXPECT_EQ(setsockopt->error.return_value, -1);

  EXPECT_EQ(catalog.find("no_such_function"), nullptr);
}

TEST(CatalogTest, MallocErrorIsNullWithEnomem) {
  const LibFunctionSpec* malloc_spec =
      LibraryCatalog::instance().find("malloc");
  ASSERT_NE(malloc_spec, nullptr);
  EXPECT_EQ(malloc_spec->error.return_value, 0);
  EXPECT_EQ(malloc_spec->error.errno_value, ENOMEM);
  EXPECT_EQ(malloc_spec->recoverability, Recoverability::kReversible);
}

TEST(CatalogTest, UsableForRecoveryExcludesIrrecoverable) {
  const auto& catalog = LibraryCatalog::instance();
  int usable = 0;
  for (const auto& spec : catalog.all())
    if (LibraryCatalog::usable_for_recovery(spec)) ++usable;
  // 61 divertible minus the 12 divertible-but-irrecoverable = 49.
  EXPECT_EQ(usable, 49);
  const LibFunctionSpec* write_spec = catalog.find("write");
  ASSERT_NE(write_spec, nullptr);
  EXPECT_TRUE(write_spec->divertible);
  EXPECT_FALSE(LibraryCatalog::usable_for_recovery(*write_spec));
}

TEST(CatalogTest, NamesAreUnique) {
  const auto& catalog = LibraryCatalog::instance();
  for (const auto& spec : catalog.all()) {
    EXPECT_EQ(catalog.find(spec.name), &spec) << spec.name;
  }
}

TEST(CatalogTest, ServersCoreCallsAreModeled) {
  const auto& catalog = LibraryCatalog::instance();
  for (const char* fn :
       {"socket", "bind", "listen", "accept", "recv", "read", "send",
        "write", "close", "open", "open64", "pread", "epoll_create1",
        "epoll_ctl", "epoll_wait", "malloc", "free", "fsync", "rename",
        "unlink", "fcntl", "stat", "fstat", "lseek", "ftruncate",
        "pwrite"}) {
    EXPECT_NE(catalog.find(fn), nullptr) << fn;
  }
}

// Property over the whole catalog: every entry's injected error must be
// internally consistent with its divertibility class.
class CatalogEntryTest
    : public ::testing::TestWithParam<const LibFunctionSpec*> {};

TEST_P(CatalogEntryTest, InjectedErrorIsConsistent) {
  const LibFunctionSpec& spec = *GetParam();
  if (!spec.divertible) {
    // Non-divertible: no error channel to exploit; nothing to check.
    SUCCEED();
    return;
  }
  if (spec.name == "posix_memalign") {
    // Reports the error code via the return value; errno unused.
    EXPECT_GT(spec.error.return_value, 0);
    return;
  }
  // Pointer-returning allocators inject NULL; everything else injects -1.
  const bool pointer_like = spec.name == "malloc" || spec.name == "calloc" ||
                            spec.name == "realloc";
  if (pointer_like) {
    EXPECT_EQ(spec.error.return_value, 0) << spec.name;
  } else {
    EXPECT_EQ(spec.error.return_value, -1) << spec.name;
  }
  EXPECT_NE(spec.error.errno_value, 0)
      << spec.name << ": a divertible call must set errno";
}

std::vector<const LibFunctionSpec*> all_specs() {
  std::vector<const LibFunctionSpec*> out;
  for (const auto& spec : LibraryCatalog::instance().all())
    out.push_back(&spec);
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllEntries, CatalogEntryTest, ::testing::ValuesIn(all_specs()),
    [](const ::testing::TestParamInfo<const LibFunctionSpec*>& info) {
      std::string name(info.param->name);
      for (char& c : name)
        if (c == '-' || c == '.') c = '_';
      return name;
    });

}  // namespace
}  // namespace fir
