#include <gtest/gtest.h>

#include "hsfi/hsfi.h"
#include "interpose/fir.h"

namespace fir {
namespace {

TEST(HsfiTest, ProfilingCountsExecutions) {
  Hsfi hsfi;
  const MarkerId m = hsfi.register_marker("block", "f:1", false);
  hsfi.set_profiling(true);
  hsfi.visit(m);
  hsfi.visit(m);
  EXPECT_EQ(hsfi.marker(m).executions, 2u);
  hsfi.set_profiling(false);
  hsfi.visit(m);
  EXPECT_EQ(hsfi.marker(m).executions, 2u);
  hsfi.reset_profile();
  EXPECT_EQ(hsfi.marker(m).executions, 0u);
}

TEST(HsfiTest, RegisterIsIdempotent) {
  Hsfi hsfi;
  const MarkerId a = hsfi.register_marker("b", "f:1", false);
  const MarkerId b = hsfi.register_marker("b", "f:1", true);  // same point
  EXPECT_EQ(a, b);
  EXPECT_EQ(hsfi.markers().size(), 1u);
}

TEST(HsfiTest, ExecutedMarkersFilterCritical) {
  Hsfi hsfi;
  const MarkerId nc = hsfi.register_marker("handler", "f:1", false);
  const MarkerId cr = hsfi.register_marker("loop", "f:2", true);
  const MarkerId idle = hsfi.register_marker("unused", "f:3", false);
  (void)idle;
  hsfi.set_profiling(true);
  hsfi.visit(nc);
  hsfi.visit(cr);
  EXPECT_EQ(hsfi.executed_markers(false).size(), 2u);
  const auto non_critical = hsfi.executed_markers(true);
  ASSERT_EQ(non_critical.size(), 1u);
  EXPECT_EQ(non_critical[0], nc);
}

TEST(HsfiTest, PersistentFaultFiresEveryVisit) {
  Hsfi hsfi;
  const MarkerId m = hsfi.register_marker("b", "f:1", false);
  hsfi.arm(FaultPlan{m, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
  EXPECT_THROW(hsfi.visit(m), FatalCrashError);  // no handler installed
  EXPECT_TRUE(hsfi.fired());
  EXPECT_TRUE(hsfi.armed());
  EXPECT_THROW(hsfi.visit(m), FatalCrashError);
}

TEST(HsfiTest, TransientFaultFiresOnce) {
  Hsfi hsfi;
  const MarkerId m = hsfi.register_marker("b", "f:1", false);
  hsfi.arm(FaultPlan{m, FaultType::kTransientCrash, CrashKind::kSegv, 1});
  EXPECT_THROW(hsfi.visit(m), FatalCrashError);
  EXPECT_FALSE(hsfi.armed());
  hsfi.visit(m);  // no crash
}

TEST(HsfiTest, UnarmedOrOtherMarkerDoesNothing) {
  Hsfi hsfi;
  const MarkerId a = hsfi.register_marker("a", "f:1", false);
  const MarkerId b = hsfi.register_marker("b", "f:2", false);
  hsfi.visit(a);
  hsfi.arm(FaultPlan{b, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
  hsfi.visit(a);  // armed at b, not a
  EXPECT_FALSE(hsfi.fired());
}

TEST(HsfiTest, LatentFaultCorruptsData) {
  Hsfi hsfi;
  const MarkerId m = hsfi.register_marker("b", "f:1", false);
  hsfi.arm(FaultPlan{m, FaultType::kLatentCorruption, CrashKind::kSegv, 99});
  std::uint8_t data[16] = {};
  hsfi.visit_data(m, data, sizeof(data));
  EXPECT_TRUE(hsfi.fired());
  int nonzero = 0;
  for (std::uint8_t byte : data)
    if (byte != 0) ++nonzero;
  EXPECT_GE(nonzero, 1);  // something changed
}

TEST(HsfiTest, LatentFaultViaPlainVisitIsInert) {
  Hsfi hsfi;
  const MarkerId m = hsfi.register_marker("b", "f:1", false);
  hsfi.arm(FaultPlan{m, FaultType::kLatentCorruption, CrashKind::kSegv, 1});
  hsfi.visit(m);  // no data exposed: nothing to corrupt
  EXPECT_FALSE(hsfi.fired());
}

TEST(HsfiTest, MarkerMacroRegistersWithLocation) {
  Fx fx;
  HSFI_POINT(fx.hsfi(), "macro_block", false);
  ASSERT_EQ(fx.hsfi().markers().size(), 1u);
  EXPECT_EQ(fx.hsfi().markers()[0].name, "macro_block");
  EXPECT_NE(fx.hsfi().markers()[0].location.find("hsfi_test.cpp"),
            std::string::npos);
}

TEST(HsfiTest, FaultInsideTransactionIsRecovered) {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kStmOnly;
  Fx fx(config);
  FIR_ANCHOR(fx);
  const MarkerId m =
      fx.hsfi().register_marker("post_socket", "f:9", false);
  fx.hsfi().arm(
      FaultPlan{m, FaultType::kPersistentCrash, CrashKind::kSegv, 1});

  const int fd = FIR_SOCKET(fx);
  if (fd >= 0) fx.hsfi().visit(m);
  EXPECT_EQ(fd, -1);  // diverted
  EXPECT_EQ(fx.err(), EMFILE);
  FIR_QUIESCE(fx);
}

}  // namespace
}  // namespace fir
