#include <gtest/gtest.h>

#include "hsfi/hsfi.h"
#include "interpose/fir.h"

namespace fir {
namespace {

TEST(HsfiTest, ProfilingCountsExecutions) {
  Hsfi hsfi;
  const MarkerId m = hsfi.register_marker("block", "f:1", false);
  hsfi.set_profiling(true);
  hsfi.visit(m);
  hsfi.visit(m);
  EXPECT_EQ(hsfi.marker(m).executions, 2u);
  hsfi.set_profiling(false);
  hsfi.visit(m);
  EXPECT_EQ(hsfi.marker(m).executions, 2u);
  hsfi.reset_profile();
  EXPECT_EQ(hsfi.marker(m).executions, 0u);
}

TEST(HsfiTest, RegisterIsIdempotent) {
  Hsfi hsfi;
  const MarkerId a = hsfi.register_marker("b", "f:1", false);
  const MarkerId b = hsfi.register_marker("b", "f:1", true);  // same point
  EXPECT_EQ(a, b);
  EXPECT_EQ(hsfi.markers().size(), 1u);
}

TEST(HsfiTest, ExecutedMarkersFilterCritical) {
  Hsfi hsfi;
  const MarkerId nc = hsfi.register_marker("handler", "f:1", false);
  const MarkerId cr = hsfi.register_marker("loop", "f:2", true);
  const MarkerId idle = hsfi.register_marker("unused", "f:3", false);
  (void)idle;
  hsfi.set_profiling(true);
  hsfi.visit(nc);
  hsfi.visit(cr);
  EXPECT_EQ(hsfi.executed_markers(false).size(), 2u);
  const auto non_critical = hsfi.executed_markers(true);
  ASSERT_EQ(non_critical.size(), 1u);
  EXPECT_EQ(non_critical[0], nc);
}

TEST(HsfiTest, PersistentFaultFiresEveryVisit) {
  Hsfi hsfi;
  const MarkerId m = hsfi.register_marker("b", "f:1", false);
  hsfi.arm(FaultPlan{m, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
  EXPECT_THROW(hsfi.visit(m), FatalCrashError);  // no handler installed
  EXPECT_TRUE(hsfi.fired());
  EXPECT_TRUE(hsfi.armed());
  EXPECT_THROW(hsfi.visit(m), FatalCrashError);
}

TEST(HsfiTest, TransientFaultFiresOnce) {
  Hsfi hsfi;
  const MarkerId m = hsfi.register_marker("b", "f:1", false);
  hsfi.arm(FaultPlan{m, FaultType::kTransientCrash, CrashKind::kSegv, 1});
  EXPECT_THROW(hsfi.visit(m), FatalCrashError);
  EXPECT_FALSE(hsfi.armed());
  hsfi.visit(m);  // no crash
}

TEST(HsfiTest, UnarmedOrOtherMarkerDoesNothing) {
  Hsfi hsfi;
  const MarkerId a = hsfi.register_marker("a", "f:1", false);
  const MarkerId b = hsfi.register_marker("b", "f:2", false);
  hsfi.visit(a);
  hsfi.arm(FaultPlan{b, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
  hsfi.visit(a);  // armed at b, not a
  EXPECT_FALSE(hsfi.fired());
}

TEST(HsfiTest, LatentFaultCorruptsData) {
  Hsfi hsfi;
  const MarkerId m = hsfi.register_marker("b", "f:1", false);
  hsfi.arm(FaultPlan{m, FaultType::kLatentCorruption, CrashKind::kSegv, 99});
  std::uint8_t data[16] = {};
  hsfi.visit_data(m, data, sizeof(data));
  EXPECT_TRUE(hsfi.fired());
  int nonzero = 0;
  for (std::uint8_t byte : data)
    if (byte != 0) ++nonzero;
  EXPECT_GE(nonzero, 1);  // something changed
}

TEST(HsfiTest, LatentFaultViaPlainVisitIsInert) {
  Hsfi hsfi;
  const MarkerId m = hsfi.register_marker("b", "f:1", false);
  hsfi.arm(FaultPlan{m, FaultType::kLatentCorruption, CrashKind::kSegv, 1});
  hsfi.visit(m);  // no data exposed: nothing to corrupt
  EXPECT_FALSE(hsfi.fired());
}

TEST(HsfiTest, MarkerMacroRegistersWithLocation) {
  Fx fx;
  HSFI_POINT(fx.hsfi(), "macro_block", false);
  ASSERT_EQ(fx.hsfi().markers().size(), 1u);
  EXPECT_EQ(fx.hsfi().markers()[0].name, "macro_block");
  EXPECT_NE(fx.hsfi().markers()[0].location.find("hsfi_test.cpp"),
            std::string::npos);
}

TEST(HsfiTest, FaultTypeNamesRoundTrip) {
  for (const FaultType type :
       {FaultType::kPersistentCrash, FaultType::kTransientCrash,
        FaultType::kLatentCorruption, FaultType::kRealCrash}) {
    FaultType parsed;
    ASSERT_TRUE(fault_type_from_name(fault_type_name(type), &parsed));
    EXPECT_EQ(parsed, type);
  }
  FaultType parsed;
  EXPECT_FALSE(fault_type_from_name("meteor-strike", &parsed));
  EXPECT_TRUE(is_fail_stop(FaultType::kPersistentCrash));
  EXPECT_TRUE(is_fail_stop(FaultType::kRealCrash));
  EXPECT_FALSE(is_fail_stop(FaultType::kLatentCorruption));
}

TEST(HsfiTest, SelectTargetsFiltersAndSamples) {
  std::vector<Marker> markers;
  const auto add = [&](const char* name, bool critical, bool handler) {
    Marker m;
    m.id = static_cast<MarkerId>(markers.size() + 1);
    m.name = name;
    m.location = std::string("f:") + std::to_string(markers.size());
    m.critical_path = critical;
    m.error_handler = handler;
    markers.push_back(std::move(m));
  };
  add("parse_header", false, false);
  add("event_loop", true, false);       // critical: excluded by default
  add("on_parse_error", false, true);   // handler: excluded by default
  add("write_body", false, false);
  add("log_request", false, false);

  TargetSelection sel;
  std::vector<Marker> out = select_targets(markers, sel);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].name, "parse_header");
  EXPECT_EQ(out[1].name, "write_body");

  sel.include = {"parse"};
  out = select_targets(markers, sel);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].name, "parse_header");

  sel.include.clear();
  sel.exclude = {"log_"};
  out = select_targets(markers, sel);
  ASSERT_EQ(out.size(), 2u);

  // Sampling is deterministic in sample_seed and keeps registration order.
  sel.exclude.clear();
  sel.max_sites = 2;
  sel.sample_seed = 7;
  const std::vector<Marker> a = select_targets(markers, sel);
  const std::vector<Marker> b = select_targets(markers, sel);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[0].name, b[0].name);
  EXPECT_EQ(a[1].name, b[1].name);
  EXPECT_LT(a[0].id, a[1].id);
}

TEST(HsfiTest, FaultInsideTransactionIsRecovered) {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kStmOnly;
  Fx fx(config);
  FIR_ANCHOR(fx);
  const MarkerId m =
      fx.hsfi().register_marker("post_socket", "f:9", false);
  fx.hsfi().arm(
      FaultPlan{m, FaultType::kPersistentCrash, CrashKind::kSegv, 1});

  const int fd = FIR_SOCKET(fx);
  if (fd >= 0) fx.hsfi().visit(m);
  EXPECT_EQ(fd, -1);  // diverted
  EXPECT_EQ(fx.err(), EMFILE);
  FIR_QUIESCE(fx);
}

}  // namespace
}  // namespace fir
