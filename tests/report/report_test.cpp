#include <gtest/gtest.h>

#include "interpose/fir.h"
#include "report/report.h"

namespace fir {
namespace {

TEST(ReportTest, ShortLocationStripsDirectories) {
  EXPECT_EQ(report::short_location("/a/b/file.cpp:12"), "file.cpp:12");
  EXPECT_EQ(report::short_location("file.cpp:3"), "file.cpp:3");
}

TEST(ReportTest, SiteTableListsExecutedSitesWithModes) {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kStmOnly;
  Fx fx(config);
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  FIR_QUIESCE(fx);

  const std::string out = report::site_table(fx.mgr().sites());
  EXPECT_NE(out.find("socket"), std::string::npos);
  EXPECT_NE(out.find("report_test.cpp"), std::string::npos);
  EXPECT_NE(out.find("yes"), std::string::npos);  // recoverable
}

TEST(ReportTest, RecoveryTimelineShowsRetryAndDivert) {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kStmOnly;
  Fx fx(config);
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  if (fd >= 0) raise_crash(CrashKind::kSegv);
  FIR_QUIESCE(fx);

  const std::string out = report::recovery_timeline(fx.mgr());
  EXPECT_NE(out.find("retry"), std::string::npos);
  EXPECT_NE(out.find("divert"), std::string::npos);
  EXPECT_NE(out.find("SIGSEGV"), std::string::npos);
}

TEST(ReportTest, CampaignTableSummarizesOutcomes) {
  CampaignResult result;
  ExperimentRecord good;
  good.marker_name = "handler_block";
  good.marker_location = "/x/app.cpp:10";
  good.triggered = good.crashed = good.recovered = true;
  ExperimentRecord bad;
  bad.marker_name = "send_block";
  bad.marker_location = "/x/app.cpp:20";
  bad.triggered = bad.crashed = bad.fatal = true;
  result.experiments = {good, bad};

  const std::string out = report::campaign_table(result);
  EXPECT_NE(out.find("RECOVERED"), std::string::npos);
  EXPECT_NE(out.find("fatal"), std::string::npos);
  EXPECT_NE(out.find("2 injected"), std::string::npos);
  EXPECT_NE(out.find("1 recovered / 1 fatal"), std::string::npos);
}

TEST(ReportTest, SurfaceBlockFormatsFractions) {
  SurfaceReport report;
  report.unique_transactions = 20;
  report.embedded_libcall_sites = 3;
  report.irrecoverable_transactions = 2;
  const std::string out = report::surface_block(report);
  EXPECT_NE(out.find("90.0%"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
}

}  // namespace
}  // namespace fir
