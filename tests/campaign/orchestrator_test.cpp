#include "campaign/orchestrator.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "campaign/builtin_specs.h"
#include "common/rng.h"

namespace fir::campaign {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string golden_path(const std::string& name) {
  return std::string(FIR_SOURCE_DIR) + "/tests/campaign/golden/" + name;
}

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  std::string error;
  const bool ok = parse_campaign_spec(R"({
    "name": "tiny", "seed": 42,
    "defaults": {
      "faults": ["persistent-crash"],
      "policies": ["firestarter"],
      "baseline_runs": 1,
      "sites": {"max_sites": 2, "sample_seed": 5}
    },
    "targets": ["minikv"]})",
                                      &spec, &error);
  EXPECT_TRUE(ok) << error;
  return spec;
}

std::string records_jsonl(const std::vector<RunRecord>& records) {
  std::ostringstream os;
  for (const RunRecord& r : records) os << record_jsonl(r) << '\n';
  return os.str();
}

// Golden-file pipeline test: saved results.jsonl -> aggregation -> rendered
// matrices must stay byte-stable (tools/campaign_report.py renders the same
// records; CI diffs its output against golden/report.md).
TEST(OrchestratorTest, GoldenAggregationAndRendering) {
  std::vector<RunRecord> records;
  std::string error;
  ASSERT_TRUE(load_results_jsonl(read_file(golden_path("results.jsonl")),
                                 &records, &error))
      << error;
  ASSERT_EQ(records.size(), 7u);
  const Aggregate agg = aggregate_records(records);
  EXPECT_EQ(render_table4(agg), read_file(golden_path("table4.txt")));
  EXPECT_EQ(render_matrices(agg), read_file(golden_path("matrices.txt")));
}

TEST(OrchestratorTest, RecordJsonlRoundTrips) {
  std::vector<RunRecord> records;
  std::string error;
  ASSERT_TRUE(load_results_jsonl(read_file(golden_path("results.jsonl")),
                                 &records, &error))
      << error;
  for (const RunRecord& record : records) {
    const std::string line = record_jsonl(record);
    const Json json = Json::parse(line, &error);
    ASSERT_TRUE(error.empty()) << error;
    RunRecord reparsed;
    ASSERT_TRUE(record_from_json(json, &reparsed, &error)) << error;
    EXPECT_EQ(reparsed.outcome, record.outcome);
    EXPECT_EQ(reparsed.recovered, record.recovered);
    EXPECT_EQ(reparsed.diversions, record.diversions);
    EXPECT_EQ(reparsed.metrics_json, record.metrics_json);
    EXPECT_EQ(reparsed.spec.server, record.spec.server);
    EXPECT_EQ(reparsed.spec.marker_name, record.spec.marker_name);
  }
}

TEST(OrchestratorTest, LoadRejectsCorruptResults) {
  std::vector<RunRecord> records;
  std::string error;
  EXPECT_FALSE(load_results_jsonl("{\"run\":0}\nnot json\n", &records,
                                  &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(load_results_jsonl(
      "{\"run\":0,\"kind\":\"baseline\",\"server\":\"minikv\"}\n", &records,
      &error));
  EXPECT_NE(error.find("outcome"), std::string::npos) << error;
}

// The acceptance property of the engine: aggregate results are identical
// across worker counts for a fixed spec + seed. in_process runs everything
// serially in this process; the forked path fans out across workers.
TEST(OrchestratorTest, WorkerCountDoesNotChangeResults) {
  const CampaignSpec spec = tiny_spec();
  OrchestratorOptions serial;
  serial.in_process = true;
  const CampaignOutcome in_process = run_campaign_spec(spec, serial);
  ASSERT_EQ(in_process.records.size(), 3u);  // 1 baseline + 2 sites
  EXPECT_TRUE(in_process.passed) << in_process.failure;

  OrchestratorOptions forked;
  forked.workers = 2;
  const CampaignOutcome parallel = run_campaign_spec(spec, forked);
  EXPECT_EQ(records_jsonl(parallel.records),
            records_jsonl(in_process.records));
  EXPECT_EQ(matrix_json(parallel.aggregate),
            matrix_json(in_process.aggregate));
}

TEST(OrchestratorTest, SeedOverrideChangesRunSeedsOnly) {
  const CampaignSpec spec = tiny_spec();
  OrchestratorOptions options;
  options.in_process = true;
  options.seed = 99;
  const CampaignOutcome outcome = run_campaign_spec(spec, options);
  ASSERT_EQ(outcome.records.size(), 3u);
  EXPECT_EQ(outcome.records[0].spec.seed, 99u);
  // Same plan shape: the seed does not change which sites are swept.
  const CampaignOutcome base =
      run_campaign_spec(spec, [] {
        OrchestratorOptions o;
        o.in_process = true;
        return o;
      }());
  ASSERT_EQ(base.records.size(), outcome.records.size());
  for (std::size_t i = 0; i < base.records.size(); ++i) {
    EXPECT_EQ(base.records[i].spec.marker_name,
              outcome.records[i].spec.marker_name);
  }
}

TEST(OrchestratorTest, PersistsResultDirectoryLayout) {
  const CampaignSpec spec = tiny_spec();
  const std::string dir =
      testing::TempDir() + "/fir_campaign_orchestrator_test";
  OrchestratorOptions options;
  options.in_process = true;
  options.out_dir = dir;
  const CampaignOutcome outcome = run_campaign_spec(spec, options);
  EXPECT_TRUE(outcome.passed) << outcome.failure;

  const std::string plan = read_file(dir + "/plan.jsonl");
  const std::string results = read_file(dir + "/results.jsonl");
  EXPECT_NE(plan.find("\"kind\":\"baseline\""), std::string::npos);
  EXPECT_NE(results.find("\"outcome\":"), std::string::npos);
  EXPECT_NE(read_file(dir + "/matrix.json").find("\"cells\""),
            std::string::npos);
  EXPECT_NE(read_file(dir + "/report.md").find("## Table IV"),
            std::string::npos);

  // results.jsonl reloads into the same aggregate (the pipeline's
  // regenerability contract).
  std::vector<RunRecord> reloaded;
  std::string error;
  ASSERT_TRUE(load_results_jsonl(results, &reloaded, &error)) << error;
  EXPECT_EQ(matrix_json(aggregate_records(reloaded)),
            matrix_json(outcome.aggregate));
}

TEST(OrchestratorTest, BuiltinSpecsParse) {
  for (const std::string& name : builtin_spec_names()) {
    const char* text = builtin_spec(name);
    ASSERT_NE(text, nullptr) << name;
    CampaignSpec spec;
    std::string error;
    EXPECT_TRUE(parse_campaign_spec(text, &spec, &error))
        << name << ": " << error;
    EXPECT_EQ(spec.name, name);
  }
  EXPECT_EQ(builtin_spec("no-such-spec"), nullptr);
}

// --- worker-death classification (death_record) -----------------------------
// The wait statuses come from REAL forked children, not hand-built ints, so
// the classification is pinned against what waitpid actually reports for
// the three death shapes the fleet supervisor and the campaign engine both
// reap: the double-fault _exit(70) backstop, signal kills, and hung workers
// (which a supervisor converts into SIGKILL after its heartbeat deadline).

int wait_status_of(void (*child)()) {
  const pid_t pid = fork();
  if (pid == 0) {
    child();
    _exit(99);  // not reached
  }
  EXPECT_GT(pid, 0);
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

RunSpec reap_spec(std::uint64_t run) {
  RunSpec spec;
  spec.run = run;
  spec.server = "miniginx";
  spec.policy_label = "firestarter";
  spec.marker_name = "recv";
  spec.marker_location = "miniginx.cpp:1";
  spec.seed = split_seed(42, run);
  return spec;
}

TEST(OrchestratorTest, DeathRecordClassifiesRealWaitStatuses) {
  const int exit70 = wait_status_of(+[] { _exit(70); });
  const int exit3 = wait_status_of(+[] { _exit(3); });
  const int killed = wait_status_of(+[] { raise(SIGKILL); });
  const int segv = wait_status_of(+[] {
    signal(SIGSEGV, SIG_DFL);
    raise(SIGSEGV);
  });
  // A hung worker never exits by itself; its supervisor SIGKILLs it after
  // the heartbeat deadline. Reproduce that shape: child blocks forever,
  // parent murders it.
  const pid_t hung = fork();
  if (hung == 0) {
    for (;;) pause();
  }
  ASSERT_GT(hung, 0);
  ASSERT_EQ(kill(hung, SIGKILL), 0);
  int hung_status = 0;
  ASSERT_EQ(waitpid(hung, &hung_status, 0), hung);

  const RunRecord r70 = death_record(reap_spec(0), exit70);
  EXPECT_EQ(r70.outcome, "double-fault");
  EXPECT_TRUE(r70.double_fault);
  EXPECT_TRUE(r70.crashed);

  const RunRecord r3 = death_record(reap_spec(1), exit3);
  EXPECT_EQ(r3.outcome, "worker-died");
  EXPECT_EQ(r3.death_reason, "worker exited 3");

  const RunRecord rk = death_record(reap_spec(2), killed);
  EXPECT_EQ(rk.outcome, "worker-died");
  EXPECT_EQ(rk.death_reason, "worker killed by signal 9");

  const RunRecord rs = death_record(reap_spec(3), segv);
  EXPECT_EQ(rs.outcome, "worker-died");
  EXPECT_EQ(rs.death_reason, "worker killed by signal 11");

  const RunRecord rh = death_record(reap_spec(4), hung_status);
  EXPECT_EQ(rh.outcome, "worker-died");
  EXPECT_EQ(rh.death_reason, "worker killed by signal 9");

  // The serialized records are pinned to a golden file so the outcome
  // strings and the record schema cannot drift silently.
  EXPECT_EQ(records_jsonl({r70, r3, rk, rs, rh}),
            read_file(golden_path("reap.jsonl")));
}

TEST(OrchestratorTest, DeathRecordRoundTripsThroughJson) {
  const RunRecord record =
      death_record(reap_spec(7), wait_status_of(+[] { _exit(70); }));
  std::vector<RunRecord> reloaded;
  std::string error;
  ASSERT_TRUE(
      load_results_jsonl(record_jsonl(record) + "\n", &reloaded, &error))
      << error;
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded[0].outcome, "double-fault");
  EXPECT_EQ(reloaded[0].spec.run, 7u);
  EXPECT_TRUE(reloaded[0].double_fault);
}

}  // namespace
}  // namespace fir::campaign
