#include "campaign/json.h"

#include <gtest/gtest.h>

namespace fir::campaign {
namespace {

TEST(JsonTest, ParsesScalarsAndContainers) {
  std::string error;
  const Json doc = Json::parse(
      R"({"name":"x","n":3,"f":1.5,"neg":-2,"yes":true,"no":false,)"
      R"("nothing":null,"list":[1,2,3],"nested":{"k":"v"}})",
      &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->string_value(), "x");
  EXPECT_EQ(doc.find("n")->uint_value(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("f")->number_value(), 1.5);
  EXPECT_DOUBLE_EQ(doc.find("neg")->number_value(), -2.0);
  EXPECT_TRUE(doc.find("yes")->bool_value());
  EXPECT_FALSE(doc.find("no")->bool_value());
  EXPECT_TRUE(doc.find("nothing")->is_null());
  ASSERT_EQ(doc.find("list")->array_items().size(), 3u);
  EXPECT_EQ(doc.find("nested")->find("k")->string_value(), "v");
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(JsonTest, SkipsLineAndBlockComments) {
  std::string error;
  const Json doc = Json::parse(
      "// campaign configs carry comments (FIJ-style)\n"
      "{ /* block */ \"a\": 1, // trailing\n  \"b\": 2 }",
      &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("a")->uint_value(), 1u);
  EXPECT_EQ(doc.find("b")->uint_value(), 2u);
}

TEST(JsonTest, RejectsDuplicateKeys) {
  std::string error;
  Json::parse(R"({"a":1,"a":2})", &error);
  EXPECT_NE(error.find("duplicate key"), std::string::npos) << error;
}

TEST(JsonTest, RejectsTrailingGarbage) {
  std::string error;
  Json::parse(R"({"a":1} extra)", &error);
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(JsonTest, RejectsMalformedInput) {
  const char* bad[] = {
      "{",           "[1,",          R"({"a")",   R"({"a":})",
      "{'a':1}",     R"("unterm)",   "truthy",    "1.2.3",
      R"({"a":1,})",
  };
  for (const char* text : bad) {
    std::string error;
    Json::parse(text, &error);
    EXPECT_FALSE(error.empty()) << "accepted: " << text;
  }
}

TEST(JsonTest, ErrorsCarryLineNumbers) {
  std::string error;
  Json::parse("{\n  \"a\": 1,\n  bad\n}", &error);
  EXPECT_EQ(error.rfind("line 3", 0), 0u) << error;
}

TEST(JsonTest, DecodesEscapes) {
  std::string error;
  const Json doc = Json::parse(R"({"s":"a\"b\\c\n\tA"})", &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(doc.find("s")->string_value(), "a\"b\\c\n\tA");
}

TEST(JsonTest, DumpRoundTrips) {
  const char* text =
      R"({"a":1,"b":-2.5,"c":"x","d":[true,false,null],"e":{"k":9}})";
  std::string error;
  const Json doc = Json::parse(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(doc.dump(), text);
  // Integral doubles render as integers (seeds are uint64 in records).
  EXPECT_EQ(Json::number(42.0).dump(), "42");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
}

TEST(JsonTest, PreservesObjectOrder) {
  std::string error;
  const Json doc = Json::parse(R"({"z":1,"a":2,"m":3})", &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(doc.object_items().size(), 3u);
  EXPECT_EQ(doc.object_items()[0].first, "z");
  EXPECT_EQ(doc.object_items()[1].first, "a");
  EXPECT_EQ(doc.object_items()[2].first, "m");
}

}  // namespace
}  // namespace fir::campaign
