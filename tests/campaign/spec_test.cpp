#include "campaign/spec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fir::campaign {
namespace {

/// Stubbed profiling: plans must be testable without live servers.
ProfileFn fixed_markers(int count) {
  return [count](const TargetSpec&, const PolicySpec&) {
    std::vector<Marker> markers;
    for (int i = 0; i < count; ++i) {
      Marker m;
      m.name = "site" + std::to_string(i);
      m.location = "file.cpp:" + std::to_string(10 + i);
      markers.push_back(std::move(m));
    }
    return markers;
  };
}

TEST(CampaignSpecTest, ParsesFullSpec) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(parse_campaign_spec(R"({
    "name": "t", "seed": 7, "workers": 4,
    "min_fail_stop_survivability": 0.7,
    "defaults": {
      "faults": ["persistent-crash", "latent-corruption"],
      "policies": ["firestarter", {"name": "vanilla"}],
      "suite_iterations": 2, "repeats": 3, "baseline_runs": 2,
      "sites": {"max_sites": 5, "sample_seed": 9, "include": ["cmd_"]}
    },
    "targets": [
      "minikv",
      {"server": "miniginx", "faults": ["transient-crash"], "repeats": 1}
    ]})",
                                  &spec, &error))
      << error;
  EXPECT_EQ(spec.name, "t");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.workers, 4);
  EXPECT_DOUBLE_EQ(spec.min_fail_stop_survivability, 0.7);
  ASSERT_EQ(spec.targets.size(), 2u);

  // Plain-name target: pure defaults.
  const TargetSpec& kv = spec.targets[0];
  EXPECT_EQ(kv.server, "minikv");
  ASSERT_EQ(kv.faults.size(), 2u);
  EXPECT_EQ(kv.faults[0], FaultType::kPersistentCrash);
  ASSERT_EQ(kv.policies.size(), 2u);
  EXPECT_EQ(kv.policies[1].name, "vanilla");
  EXPECT_EQ(kv.suite_iterations, 2);
  EXPECT_EQ(kv.repeats, 3);
  EXPECT_EQ(kv.baseline_runs, 2);
  EXPECT_EQ(kv.sites.max_sites, 5u);
  EXPECT_EQ(kv.sites.sample_seed, 9u);
  ASSERT_EQ(kv.sites.include.size(), 1u);

  // Object target: overrides apply on top of the merged defaults.
  const TargetSpec& web = spec.targets[1];
  EXPECT_EQ(web.server, "miniginx");
  ASSERT_EQ(web.faults.size(), 1u);
  EXPECT_EQ(web.faults[0], FaultType::kTransientCrash);
  EXPECT_EQ(web.repeats, 1);
  EXPECT_EQ(web.suite_iterations, 2);      // inherited
  ASSERT_EQ(web.policies.size(), 2u);      // inherited
}

TEST(CampaignSpecTest, PolicyKnobOverridesAndLabels) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(parse_campaign_spec(R"({
    "targets": [{"server": "minikv", "policies": [
      {"name": "firestarter", "abort_threshold": 0.05, "sample_size": 8,
       "env": {"FIR_SIGNALS": "1"}}
    ]}]})",
                                  &spec, &error))
      << error;
  const PolicySpec& policy = spec.targets[0].policies[0];
  EXPECT_DOUBLE_EQ(policy.abort_threshold, 0.05);
  EXPECT_EQ(policy.sample_size, 8u);
  EXPECT_EQ(policy.env.at("FIR_SIGNALS"), "1");
  // Overridden knobs show up in the label: distinct sweep columns must
  // aggregate separately.
  EXPECT_EQ(policy.label(), "firestarter@t=0.05@s=8@FIR_SIGNALS=1");
  EXPECT_EQ(PolicySpec{}.label(), "firestarter");
}

TEST(CampaignSpecTest, RejectsBadSpecs) {
  const struct {
    const char* text;
    const char* expect;  // substring of the error
  } cases[] = {
      {"[]", "top level"},
      {R"({"targets": []})", "non-empty"},
      {R"({"tragets": [{"server": "minikv"}]})", "unknown key"},
      {R"({"targets": ["minikx"]})", "unknown server"},
      {R"({"targets": [{"server": "minikv", "faults": ["meteor"]}]})",
       "unknown fault"},
      {R"({"targets": [{"server": "minikv", "policies": ["warmstart"]}]})",
       "unknown policy"},
      {R"({"targets": [{"server": "minikv", "faults": []}]})", "empty"},
      {R"({"targets": [{"server": "minikv", "repeats": 0}]})", ">= 1"},
      {R"({"workers": 0, "targets": ["minikv"]})", ">= 1"},
      {R"({"min_fail_stop_survivability": 1.5, "targets": ["minikv"]})",
       "[0, 1]"},
      {R"({"defaults": {"server": "minikv"}, "targets": ["minikv"]})",
       "defaults"},
      {R"({"targets": [{"server": "minikv",
           "sites": {"max_site": 3}}]})",
       "unknown key"},
      {R"({"targets": [{"server": "minikv", "policies":
           [{"name": "firestarter", "env": {"FIR_SIGNALS": 1}}]}]})",
       "must be a string"},
      {R"({"targets": [{"server": "minikv"}], )", "line"},  // parse error
  };
  for (const auto& c : cases) {
    CampaignSpec spec;
    std::string error;
    EXPECT_FALSE(parse_campaign_spec(c.text, &spec, &error))
        << "accepted: " << c.text;
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << "for " << c.text << " got: " << error;
  }
}

TEST(CampaignSpecTest, ExpansionCountsAndOrdering) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(parse_campaign_spec(R"({
    "seed": 5,
    "defaults": {
      "faults": ["persistent-crash", "latent-corruption"],
      "policies": ["firestarter", "vanilla"],
      "repeats": 2, "baseline_runs": 1
    },
    "targets": ["minikv", "miniginx"]})",
                                  &spec, &error))
      << error;
  const std::vector<RunSpec> plan = expand_plan(spec, fixed_markers(3));
  // Per (target x policy): 1 baseline + 2 faults x 3 sites x 2 repeats.
  const std::size_t per_policy = 1 + 2 * 3 * 2;
  ASSERT_EQ(plan.size(), 2 * 2 * per_policy);

  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].run, i);  // run index == plan position
    EXPECT_EQ(plan[i].seed, split_seed(5, i));
  }
  // Baselines come first within each (target, policy) block.
  EXPECT_TRUE(plan[0].baseline);
  EXPECT_EQ(plan[0].server, "minikv");
  EXPECT_EQ(plan[0].policy_label, "firestarter");
  EXPECT_FALSE(plan[1].baseline);
  EXPECT_EQ(plan[1].marker_name, "site0");
  EXPECT_TRUE(plan[per_policy].baseline);
  EXPECT_EQ(plan[per_policy].policy_label, "vanilla");
  EXPECT_EQ(plan[2 * per_policy].server, "miniginx");
  // Repeats of one site differ only by run index (and thus seed).
  EXPECT_EQ(plan[1].marker_name, plan[2].marker_name);
  EXPECT_NE(plan[1].seed, plan[2].seed);
}

TEST(CampaignSpecTest, PlanJsonlShape) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(parse_campaign_spec(R"({"targets": ["minikv"]})", &spec,
                                  &error))
      << error;
  const std::vector<RunSpec> plan = expand_plan(spec, fixed_markers(1));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(run_spec_jsonl(plan[0]),
            R"({"run":0,"kind":"baseline","server":"minikv",)"
            R"("policy":"firestarter","suite_iterations":1,"seed":1})");
  EXPECT_NE(run_spec_jsonl(plan[1]).find(
                R"("kind":"experiment","server":"minikv")"),
            std::string::npos);
  EXPECT_NE(run_spec_jsonl(plan[1]).find(R"("fault":"persistent-crash")"),
            std::string::npos);
}

}  // namespace
}  // namespace fir::campaign
