#include "campaign/aggregate.h"

#include <gtest/gtest.h>

namespace fir::campaign {
namespace {

RunRecord experiment(const std::string& server, const std::string& policy,
                     FaultType fault, const std::string& outcome) {
  RunRecord r;
  r.spec.server = server;
  r.spec.policy_label = policy;
  r.spec.fault = fault;
  r.outcome = outcome;
  r.triggered = outcome != "not-triggered";
  r.crashed = outcome == "recovered" || outcome == "not-recovered" ||
              outcome == "fatal" || outcome == "double-fault";
  r.recovered = outcome == "recovered";
  r.fatal = outcome == "fatal";
  r.double_fault = outcome == "double-fault";
  return r;
}

RunRecord baseline(const std::string& server, bool ok) {
  RunRecord r;
  r.spec.server = server;
  r.spec.policy_label = "firestarter";
  r.spec.baseline = true;
  r.outcome = ok ? "baseline-ok" : "baseline-failed";
  return r;
}

TEST(AggregateTest, FoldsRecordsIntoCells) {
  std::vector<RunRecord> records;
  records.push_back(baseline("minikv", true));
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kPersistentCrash, "recovered"));
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kPersistentCrash, "fatal"));
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kLatentCorruption,
                               "not-triggered"));
  records.back().diversions = 4;
  const Aggregate agg = aggregate_records(records);
  EXPECT_EQ(agg.runs, 4u);
  ASSERT_EQ(agg.cells.size(), 2u);
  const MatrixCell& fs = agg.cells[0];
  EXPECT_EQ(fs.fault, "persistent-crash");
  EXPECT_EQ(fs.injected, 2u);
  EXPECT_EQ(fs.crashed, 2u);
  EXPECT_EQ(fs.recovered, 1u);
  EXPECT_EQ(fs.fatal, 1u);
  EXPECT_DOUBLE_EQ(fs.survivability(), 0.5);
  const MatrixCell& latent = agg.cells[1];
  EXPECT_EQ(latent.triggered, 0u);
  EXPECT_EQ(latent.diversions, 4u);
  EXPECT_DOUBLE_EQ(latent.survivability(), 1.0);  // nothing crashed
  ASSERT_EQ(agg.baselines.size(), 1u);
  EXPECT_EQ(agg.baselines[0].ok, 1u);
}

TEST(AggregateTest, FailStopRowsCollapseCrashFaultsOnly) {
  std::vector<RunRecord> records;
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kPersistentCrash, "recovered"));
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kTransientCrash, "recovered"));
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kRealCrash, "not-recovered"));
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kLatentCorruption, "fatal"));
  const Aggregate agg = aggregate_records(records);
  const std::vector<MatrixCell> rows = agg.fail_stop_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].injected, 3u);  // latent-corruption excluded
  EXPECT_EQ(rows[0].recovered, 2u);
  EXPECT_EQ(rows[0].crashed, 3u);
}

TEST(AggregateTest, OrderIndependence) {
  std::vector<RunRecord> records;
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kPersistentCrash, "recovered"));
  records.push_back(experiment("miniginx", "firestarter",
                               FaultType::kPersistentCrash, "fatal"));
  records.push_back(baseline("minikv", true));
  std::vector<RunRecord> shuffled = {records[2], records[0], records[1]};
  // Cell ordering differs with record order, but contents do not.
  const Aggregate a = aggregate_records(records);
  const Aggregate b = aggregate_records(shuffled);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (const MatrixCell& cell : a.cells) {
    bool found = false;
    for (const MatrixCell& other : b.cells) {
      if (other.server == cell.server && other.fault == cell.fault) {
        EXPECT_EQ(other.recovered, cell.recovered);
        EXPECT_EQ(other.fatal, cell.fatal);
        found = true;
      }
    }
    EXPECT_TRUE(found) << cell.server;
  }
}

TEST(AggregateTest, PassGate) {
  std::vector<RunRecord> records;
  records.push_back(baseline("minikv", true));
  for (int i = 0; i < 4; ++i) {
    records.push_back(experiment("minikv", "firestarter",
                                 FaultType::kPersistentCrash, "recovered"));
  }
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kPersistentCrash, "fatal"));
  Aggregate agg = aggregate_records(records);  // survivability 4/5 = 0.8
  std::string why;
  EXPECT_TRUE(campaign_passed(agg, 0.70, &why)) << why;
  why.clear();
  EXPECT_FALSE(campaign_passed(agg, 0.90, &why));
  EXPECT_NE(why.find("below gate"), std::string::npos) << why;

  // A failed baseline fails the campaign regardless of survivability.
  records.push_back(baseline("minikv", false));
  agg = aggregate_records(records);
  why.clear();
  EXPECT_FALSE(campaign_passed(agg, 0.0, &why));
  EXPECT_NE(why.find("baseline"), std::string::npos) << why;

  // So does a dead worker.
  records.pop_back();
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kPersistentCrash, "worker-died"));
  agg = aggregate_records(records);
  why.clear();
  EXPECT_FALSE(campaign_passed(agg, 0.0, &why));
  EXPECT_NE(why.find("worker death"), std::string::npos) << why;
}

TEST(AggregateTest, GateRequiresMeasuredCrashes) {
  std::vector<RunRecord> records;
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kPersistentCrash, "not-triggered"));
  const Aggregate agg = aggregate_records(records);
  std::string why;
  // Survivability is vacuously 1.0 — the gate must not pass on nothing.
  EXPECT_FALSE(campaign_passed(agg, 0.70, &why));
  EXPECT_NE(why.find("nothing measured"), std::string::npos) << why;
}

TEST(AggregateTest, MatrixJsonShape) {
  std::vector<RunRecord> records;
  records.push_back(baseline("minikv", true));
  records.push_back(experiment("minikv", "firestarter",
                               FaultType::kPersistentCrash, "recovered"));
  const std::string json = matrix_json(aggregate_records(records));
  std::string error;
  const Json parsed = Json::parse(json, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(parsed.find("runs")->uint_value(), 2u);
  ASSERT_EQ(parsed.find("cells")->array_items().size(), 1u);
  const Json& cell = parsed.find("cells")->array_items()[0];
  EXPECT_EQ(cell.find("server")->string_value(), "minikv");
  EXPECT_EQ(cell.find("recovered")->uint_value(), 1u);
  EXPECT_DOUBLE_EQ(cell.find("survivability")->number_value(), 1.0);
  ASSERT_EQ(parsed.find("fail_stop")->array_items().size(), 1u);
  ASSERT_EQ(parsed.find("baselines")->array_items().size(), 1u);
}

}  // namespace
}  // namespace fir::campaign
