#include <gtest/gtest.h>

#include "apps/minikv.h"
#include "workload/kv_client.h"

namespace fir {
namespace {

TxManagerConfig stm_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

std::string roundtrip(Minikv& server, KvClient& client,
                      std::string_view command) {
  EXPECT_TRUE(client.connected() || client.connect());
  EXPECT_TRUE(client.send_command(command));
  std::string reply;
  for (int i = 0; i < 8; ++i) {
    server.run_once();
    if (client.try_read_reply(reply) == 1) return reply;
  }
  ADD_FAILURE() << "no reply for " << command;
  return reply;
}

class MinikvTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(server_.start(0).is_ok()); }
  Minikv server_{stm_cfg()};
};

TEST_F(MinikvTest, PingPong) {
  KvClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(roundtrip(server_, client, "PING"), "+PONG");
}

TEST_F(MinikvTest, SetGetDelCycle) {
  KvClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(roundtrip(server_, client, "SET name firestarter"), "+OK");
  EXPECT_EQ(roundtrip(server_, client, "GET name"), "firestarter");
  EXPECT_EQ(roundtrip(server_, client, "EXISTS name"), ":1");
  EXPECT_EQ(roundtrip(server_, client, "DEL name"), ":1");
  EXPECT_EQ(roundtrip(server_, client, "GET name"), "$-1");
  EXPECT_EQ(roundtrip(server_, client, "DEL name"), ":0");
}

TEST_F(MinikvTest, ValuesMayContainSpaces) {
  KvClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(roundtrip(server_, client, "SET k hello world again"), "+OK");
  EXPECT_EQ(roundtrip(server_, client, "GET k"), "hello world again");
}

TEST_F(MinikvTest, IncrCreatesAndCounts) {
  KvClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(roundtrip(server_, client, "INCR hits"), ":1");
  EXPECT_EQ(roundtrip(server_, client, "INCR hits"), ":2");
  EXPECT_EQ(roundtrip(server_, client, "SET hits abc"), "+OK");
  EXPECT_EQ(roundtrip(server_, client, "INCR hits"), "-ERR not an integer");
}

TEST_F(MinikvTest, DbsizeAndKeys) {
  KvClient client(server_.fx().env(), server_.port());
  roundtrip(server_, client, "SET a 1");
  roundtrip(server_, client, "SET b 2");
  EXPECT_EQ(roundtrip(server_, client, "DBSIZE"), ":2");
  const std::string keys = roundtrip(server_, client, "KEYS");
  EXPECT_NE(keys.find('a'), std::string::npos);
  EXPECT_NE(keys.find('b'), std::string::npos);
}

TEST_F(MinikvTest, UnknownCommandAndOversizeKeyReportErrors) {
  KvClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(roundtrip(server_, client, "BOGUS x"), "-ERR unknown command");
  const std::string long_key(60, 'k');
  EXPECT_EQ(roundtrip(server_, client, "SET " + long_key + " v"),
            "-ERR invalid argument");
}

TEST_F(MinikvTest, SaveWritesRdbAtomically) {
  KvClient client(server_.fx().env(), server_.port());
  roundtrip(server_, client, "SET k1 v1");
  roundtrip(server_, client, "SET k2 v2");
  EXPECT_EQ(roundtrip(server_, client, "SAVE"), "+OK");
  auto dump = server_.fx().env().vfs().lookup("/data/dump.rdb");
  ASSERT_NE(dump, nullptr);
  const std::string content(dump->data.begin(), dump->data.end());
  EXPECT_NE(content.find("k1=v1"), std::string::npos);
  EXPECT_NE(content.find("k2=v2"), std::string::npos);
  EXPECT_FALSE(server_.fx().env().vfs().exists("/data/dump.rdb.tmp"));
}

TEST_F(MinikvTest, FlushallEmptiesKeyspace) {
  KvClient client(server_.fx().env(), server_.port());
  roundtrip(server_, client, "SET a 1");
  roundtrip(server_, client, "SET b 2");
  EXPECT_EQ(roundtrip(server_, client, "FLUSHALL"), "+OK");
  EXPECT_EQ(roundtrip(server_, client, "DBSIZE"), ":0");
  EXPECT_EQ(server_.db_size(), 0u);
}

TEST_F(MinikvTest, PersistentCrashMidSetRollsBackKeyspace) {
  KvClient client(server_.fx().env(), server_.port());
  roundtrip(server_, client, "SET stable value");

  // Persistent fault in the SET handler.
  const MarkerId m = server_.fx().hsfi().register_marker(
      "cmd_set", "src/apps/minikv.cpp:239", false);
  (void)m;
  // Find the marker id actually interned by the handler.
  server_.fx().hsfi().set_profiling(true);
  roundtrip(server_, client, "SET probe 1");
  MarkerId target = kInvalidMarker;
  for (const Marker& marker : server_.fx().hsfi().markers())
    if (marker.name == "cmd_set" && marker.executions > 0)
      target = marker.id;
  ASSERT_NE(target, kInvalidMarker);
  server_.fx().hsfi().arm(
      FaultPlan{target, FaultType::kPersistentCrash, CrashKind::kSegv, 1});

  // The SET crashes persistently; FIRestarter diverts and the connection
  // is dropped (recv error handler), but the server and keyspace survive.
  client.send_command("SET victim x");
  for (int i = 0; i < 8; ++i) server_.run_once();
  server_.fx().hsfi().disarm();

  KvClient fresh(server_.fx().env(), server_.port());
  EXPECT_EQ(roundtrip(server_, fresh, "GET stable"), "value");
  EXPECT_EQ(roundtrip(server_, fresh, "GET victim"), "$-1");
  EXPECT_EQ(roundtrip(server_, fresh, "GET probe"), "1");
}

TEST_F(MinikvTest, MultipleClientsInterleave) {
  KvClient a(server_.fx().env(), server_.port());
  KvClient b(server_.fx().env(), server_.port());
  EXPECT_EQ(roundtrip(server_, a, "SET shared from-a"), "+OK");
  EXPECT_EQ(roundtrip(server_, b, "GET shared"), "from-a");
  EXPECT_EQ(roundtrip(server_, b, "SET shared from-b"), "+OK");
  EXPECT_EQ(roundtrip(server_, a, "GET shared"), "from-b");
}

TEST_F(MinikvTest, AppendBuildsValues) {
  KvClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(roundtrip(server_, client, "APPEND log first"), ":5");
  EXPECT_EQ(roundtrip(server_, client, "APPEND log -second"), ":12");
  EXPECT_EQ(roundtrip(server_, client, "GET log"), "first-second");
  const std::string huge(200, 'x');
  EXPECT_EQ(roundtrip(server_, client, "APPEND log " + huge),
            "-ERR value too long");
}

TEST_F(MinikvTest, MgetReturnsValuesAndNils) {
  KvClient client(server_.fx().env(), server_.port());
  roundtrip(server_, client, "SET a 1");
  roundtrip(server_, client, "SET c 3");
  EXPECT_EQ(roundtrip(server_, client, "MGET a b c"), "1 3");
}

TEST_F(MinikvTest, ExpireTtlPersistLifecycle) {
  KvClient client(server_.fx().env(), server_.port());
  roundtrip(server_, client, "SET session token");
  EXPECT_EQ(roundtrip(server_, client, "TTL session"), ":-1");
  EXPECT_EQ(roundtrip(server_, client, "EXPIRE session 10"), ":1");
  const std::string ttl = roundtrip(server_, client, "TTL session");
  EXPECT_TRUE(ttl == ":10" || ttl == ":9") << ttl;
  EXPECT_EQ(roundtrip(server_, client, "PERSIST session"), ":1");
  EXPECT_EQ(roundtrip(server_, client, "TTL session"), ":-1");
  EXPECT_EQ(roundtrip(server_, client, "EXPIRE missing 5"), ":0");
  EXPECT_EQ(roundtrip(server_, client, "TTL missing"), ":-2");
}

TEST_F(MinikvTest, ExpiredKeysVanishLazily) {
  KvClient client(server_.fx().env(), server_.port());
  roundtrip(server_, client, "SET ephemeral data");
  EXPECT_EQ(roundtrip(server_, client, "EXPIRE ephemeral 1"), ":1");
  // Advance the virtual clock past the TTL.
  server_.fx().env().clock().advance_ns(2'000'000'000ull);
  EXPECT_EQ(roundtrip(server_, client, "GET ephemeral"), "$-1");
  EXPECT_EQ(roundtrip(server_, client, "EXISTS ephemeral"), ":0");
  EXPECT_EQ(roundtrip(server_, client, "DBSIZE"), ":0");
}

TEST_F(MinikvTest, ExpireSurvivesCrashRollback) {
  KvClient client(server_.fx().env(), server_.port());
  roundtrip(server_, client, "SET k v");
  roundtrip(server_, client, "EXPIRE k 100");

  server_.fx().hsfi().set_profiling(true);
  roundtrip(server_, client, "TTL k");
  MarkerId target = kInvalidMarker;
  for (const Marker& m : server_.fx().hsfi().markers())
    if (m.name == "cmd_ttl" && m.executions > 0) target = m.id;
  ASSERT_NE(target, kInvalidMarker);
  server_.fx().hsfi().arm(
      FaultPlan{target, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
  client.send_command("TTL k");
  for (int i = 0; i < 8; ++i) server_.run_once();
  server_.fx().hsfi().disarm();

  KvClient fresh(server_.fx().env(), server_.port());
  const std::string ttl = roundtrip(server_, fresh, "TTL k");
  EXPECT_TRUE(ttl == ":100" || ttl == ":99") << ttl;  // expiry intact
}

}  // namespace
}  // namespace fir
