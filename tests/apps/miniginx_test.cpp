#include <gtest/gtest.h>

#include "apps/miniginx.h"
#include "workload/http_client.h"

namespace fir {
namespace {

TxManagerConfig stm_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

// Sends one request and pumps the server until the response arrives.
HttpClient::Response get(Miniginx& server, HttpClient& client,
                         std::string_view target,
                         std::string_view method = "GET") {
  EXPECT_TRUE(client.connected() || client.connect());
  EXPECT_TRUE(client.send_request(method, target));
  HttpClient::Response response;
  for (int i = 0; i < 8; ++i) {
    server.run_once();
    if (client.try_read_response(response) == 1) return response;
  }
  ADD_FAILURE() << "no response for " << target;
  return response;
}

class MiniginxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.start(0).is_ok());
  }
  Miniginx server_{stm_cfg()};
};

TEST_F(MiniginxTest, ServesIndexOnRootPath) {
  HttpClient client(server_.fx().env(), server_.port());
  const auto response = get(server_, client, "/");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("miniginx"), std::string::npos);
}

TEST_F(MiniginxTest, Serves404ForMissingFile) {
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(get(server_, client, "/missing.html").status, 404);
}

TEST_F(MiniginxTest, RejectsTraversal) {
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(get(server_, client, "/../secret").status, 403);
}

TEST_F(MiniginxTest, RejectsUnsupportedMethod) {
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(get(server_, client, "/", "DELETE").status, 405);
}

TEST_F(MiniginxTest, UrlDecodingWorks) {
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(get(server_, client, "/%69ndex.html").status, 200);
}

TEST_F(MiniginxTest, SsiSubstitutionExpandsVariables) {
  HttpClient client(server_.fx().env(), server_.port());
  const auto response = get(server_, client, "/page.shtml");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("host=miniginx"), std::string::npos);
  EXPECT_EQ(response.body.find("<!--#echo"), std::string::npos);
}

TEST_F(MiniginxTest, UnknownSsiVariableWithoutBugIsBenign) {
  HttpClient client(server_.fx().env(), server_.port());
  const auto response = get(server_, client, "/broken.shtml");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("(none)"), std::string::npos);
}

TEST_F(MiniginxTest, KeepAliveServesMultipleRequests) {
  HttpClient client(server_.fx().env(), server_.port());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(get(server_, client, "/index.html").status, 200);
  }
  EXPECT_EQ(server_.counters().requests_ok.get(), 5u);
  EXPECT_EQ(server_.counters().connections_accepted.get(), 1u);
}

TEST_F(MiniginxTest, HeadOmitsBody) {
  HttpClient client(server_.fx().env(), server_.port());
  const auto response = get(server_, client, "/index.html", "HEAD");
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(response.body.empty());
}

TEST_F(MiniginxTest, LargeFileStreamsFully) {
  HttpClient client(server_.fx().env(), server_.port());
  const auto response = get(server_, client, "/large.bin");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.size(), 16000u);
}

TEST_F(MiniginxTest, MalformedRequestGets400) {
  Env& env = server_.fx().env();
  const int fd = env.connect_to(server_.port());
  ASSERT_GE(fd, 0);
  env.send(fd, "NONSENSE\r\n\r\n", 12);
  // Pass 1 accepts the connection; pass 2 reads and responds.
  server_.run_once();
  server_.run_once();
  char buf[256];
  const ssize_t r = env.recv(fd, buf, sizeof(buf));
  ASSERT_GT(r, 0);
  EXPECT_NE(std::string_view(buf, static_cast<std::size_t>(r))
                .find("400 Bad Request"),
            std::string_view::npos);
  env.close(fd);
}

TEST_F(MiniginxTest, PipelinedRequestsAllAnswered) {
  Env& env = server_.fx().env();
  const int fd = env.connect_to(server_.port());
  ASSERT_GE(fd, 0);
  const char* reqs =
      "GET /about.txt HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /api.json HTTP/1.1\r\nHost: x\r\n\r\n";
  env.send(fd, reqs, std::strlen(reqs));
  for (int i = 0; i < 4; ++i) server_.run_once();
  char buf[8192];
  const ssize_t r = env.recv(fd, buf, sizeof(buf));
  ASSERT_GT(r, 0);
  const std::string_view out(buf, static_cast<std::size_t>(r));
  // Both responses arrived on the same connection.
  EXPECT_NE(out.find("text/plain"), std::string_view::npos);
  EXPECT_NE(out.find("application/json"), std::string_view::npos);
  env.close(fd);
}

TEST_F(MiniginxTest, StopReleasesAllFds) {
  {
    HttpClient client(server_.fx().env(), server_.port());
    get(server_, client, "/");
    client.close();
  }
  server_.run_once();
  server_.stop();
  // Only client-side fds may linger; the server released everything.
  EXPECT_EQ(server_.fx().env().open_fd_count(), 0u);
}

TEST_F(MiniginxTest, ConnectionPoolExhaustionShedsLoad) {
  Env& env = server_.fx().env();
  std::vector<int> fds;
  // 64-slot pool; the 70th connection gets closed by the server.
  for (int i = 0; i < 70; ++i) {
    const int fd = env.connect_to(server_.port());
    if (fd >= 0) fds.push_back(fd);
    server_.run_once();
  }
  EXPECT_EQ(server_.counters().connections_accepted.get(), 64u);
  for (int fd : fds) env.close(fd);
}

TEST_F(MiniginxTest, RangeRequestReturnsPartialContent) {
  Env& env = server_.fx().env();
  const int fd = env.connect_to(server_.port());
  ASSERT_GE(fd, 0);
  const char* req =
      "GET /large.bin HTTP/1.1\r\nHost: x\r\nRange: bytes=0-99\r\n\r\n";
  env.send(fd, req, std::strlen(req));
  for (int i = 0; i < 4; ++i) server_.run_once();
  char buf[4096];
  const ssize_t r = env.recv(fd, buf, sizeof(buf));
  ASSERT_GT(r, 0);
  const std::string_view out(buf, static_cast<std::size_t>(r));
  EXPECT_NE(out.find("206 Partial Content"), std::string_view::npos);
  EXPECT_NE(out.find("Content-Range: bytes 0-99/16000"),
            std::string_view::npos);
  EXPECT_NE(out.find("Content-Length: 100"), std::string_view::npos);
  env.close(fd);
}

TEST_F(MiniginxTest, SuffixRangeAndUnsatisfiableRange) {
  Env& env = server_.fx().env();
  const int fd = env.connect_to(server_.port());
  ASSERT_GE(fd, 0);
  const char* req1 =
      "GET /about.txt HTTP/1.1\r\nHost: x\r\nRange: bytes=-5\r\n\r\n";
  env.send(fd, req1, std::strlen(req1));
  for (int i = 0; i < 4; ++i) server_.run_once();
  char buf[2048];
  ssize_t r = env.recv(fd, buf, sizeof(buf));
  ASSERT_GT(r, 0);
  EXPECT_NE(std::string_view(buf, static_cast<std::size_t>(r))
                .find("206 Partial"),
            std::string_view::npos);

  const char* req2 =
      "GET /about.txt HTTP/1.1\r\nHost: x\r\nRange: "
      "bytes=99999-\r\n\r\n";
  env.send(fd, req2, std::strlen(req2));
  for (int i = 0; i < 4; ++i) server_.run_once();
  r = env.recv(fd, buf, sizeof(buf));
  ASSERT_GT(r, 0);
  EXPECT_NE(std::string_view(buf, static_cast<std::size_t>(r))
                .find("416 Range Not Satisfiable"),
            std::string_view::npos);
  env.close(fd);
}

TEST_F(MiniginxTest, AccessLogRecordsRequests) {
  HttpClient client(server_.fx().env(), server_.port());
  get(server_, client, "/index.html");
  get(server_, client, "/missing");
  auto log = server_.fx().env().vfs().lookup("/logs/miniginx.access.log");
  ASSERT_NE(log, nullptr);
  const std::string content(log->data.begin(), log->data.end());
  EXPECT_NE(content.find("\"GET /index.html HTTP/1.1\" 200"),
            std::string::npos);
  EXPECT_NE(content.find("\"GET /missing HTTP/1.1\" 404"),
            std::string::npos);
}

}  // namespace
}  // namespace fir
