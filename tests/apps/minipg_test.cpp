#include <gtest/gtest.h>

#include "apps/minipg.h"
#include "workload/pg_client.h"

namespace fir {
namespace {

TxManagerConfig stm_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

std::string query(Minipg& server, PgClient& client, std::string_view sql) {
  EXPECT_TRUE(client.connected() || client.connect());
  EXPECT_TRUE(client.send_query(sql));
  std::string reply;
  for (int i = 0; i < 8; ++i) {
    server.run_once();
    if (client.try_read_result(reply) == 1) return reply;
  }
  ADD_FAILURE() << "no result for " << sql;
  return reply;
}

class MinipgTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(server_.start(0).is_ok()); }
  Minipg server_{stm_cfg()};
};

TEST_F(MinipgTest, CreateTableOnceOnly) {
  PgClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(query(server_, client, "CREATE TABLE users"), "CREATE TABLE");
  EXPECT_EQ(query(server_, client, "CREATE TABLE users"),
            "ERROR: relation exists");
}

TEST_F(MinipgTest, InsertSelectUpdateDelete) {
  PgClient client(server_.fx().env(), server_.port());
  query(server_, client, "CREATE TABLE t");
  EXPECT_EQ(query(server_, client, "INSERT t alice admin"), "INSERT 0 1");
  EXPECT_EQ(query(server_, client, "INSERT t alice dup"),
            "ERROR: duplicate key");
  EXPECT_EQ(query(server_, client, "SELECT t alice"), "admin\n(1 row)");
  EXPECT_EQ(query(server_, client, "UPDATE t alice root"), "UPDATE 1");
  EXPECT_EQ(query(server_, client, "SELECT t alice"), "root\n(1 row)");
  EXPECT_EQ(query(server_, client, "UPDATE t bob x"), "UPDATE 0");
  EXPECT_EQ(query(server_, client, "DELETE t alice"), "DELETE 1");
  EXPECT_EQ(query(server_, client, "SELECT t alice"), "(0 rows)");
}

TEST_F(MinipgTest, MissingRelationErrors) {
  PgClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(query(server_, client, "SELECT ghosts k"),
            "ERROR: relation does not exist");
  EXPECT_EQ(query(server_, client, "DROP anything"),
            "ERROR: syntax error");
}

TEST_F(MinipgTest, TransactionVerbs) {
  PgClient client(server_.fx().env(), server_.port());
  query(server_, client, "CREATE TABLE t");
  EXPECT_EQ(query(server_, client, "BEGIN"), "BEGIN");
  EXPECT_EQ(query(server_, client, "INSERT t k v"), "INSERT 0 1");
  EXPECT_EQ(query(server_, client, "COMMIT"), "COMMIT");
}

TEST_F(MinipgTest, WalRecordsMutations) {
  PgClient client(server_.fx().env(), server_.port());
  query(server_, client, "CREATE TABLE t");
  query(server_, client, "INSERT t key1 val1");
  query(server_, client, "DELETE t key1");
  auto wal =
      server_.fx().env().vfs().lookup("/pg/pg_wal/000000010000000000000001");
  ASSERT_NE(wal, nullptr);
  const std::string content(wal->data.begin(), wal->data.end());
  EXPECT_NE(content.find("op=create rel=t"), std::string::npos);
  EXPECT_NE(content.find("op=insert rel=t key=key1 val=val1"),
            std::string::npos);
  EXPECT_NE(content.find("op=delete rel=t key=key1"), std::string::npos);
}

TEST_F(MinipgTest, CheckpointFlushesHeap) {
  PgClient client(server_.fx().env(), server_.port());
  query(server_, client, "CREATE TABLE t");
  query(server_, client, "INSERT t k1 v1");
  EXPECT_EQ(query(server_, client, "CHECKPOINT"), "CHECKPOINT");
  auto heap = server_.fx().env().vfs().lookup("/pg/base/heap.dat");
  ASSERT_NE(heap, nullptr);
  const std::string content(heap->data.begin(), heap->data.end());
  EXPECT_NE(content.find("t:k1=v1"), std::string::npos);
}

TEST_F(MinipgTest, TooManyTablesRejected) {
  PgClient client(server_.fx().env(), server_.port());
  for (std::size_t i = 0; i < Minipg::kMaxTables; ++i) {
    EXPECT_EQ(query(server_, client,
                    "CREATE TABLE t" + std::to_string(i)),
              "CREATE TABLE");
  }
  EXPECT_EQ(query(server_, client, "CREATE TABLE overflow"),
            "ERROR: too many relations");
}

TEST_F(MinipgTest, PersistentCrashInExecutorRollsBackRow) {
  PgClient client(server_.fx().env(), server_.port());
  query(server_, client, "CREATE TABLE t");
  query(server_, client, "INSERT t stable v0");

  server_.fx().hsfi().set_profiling(true);
  query(server_, client, "INSERT t probe v");
  MarkerId target = kInvalidMarker;
  for (const Marker& m : server_.fx().hsfi().markers())
    if (m.name == "executor_write" && m.executions > 0) target = m.id;
  ASSERT_NE(target, kInvalidMarker);
  server_.fx().hsfi().arm(
      FaultPlan{target, FaultType::kPersistentCrash, CrashKind::kSegv, 1});

  client.send_query("INSERT t victim v");
  for (int i = 0; i < 8; ++i) server_.run_once();
  server_.fx().hsfi().disarm();

  PgClient fresh(server_.fx().env(), server_.port());
  EXPECT_EQ(query(server_, fresh, "SELECT t stable"), "v0\n(1 row)");
  EXPECT_EQ(query(server_, fresh, "SELECT t victim"), "(0 rows)");
}

TEST_F(MinipgTest, TotalRowsCountsAcrossTables) {
  PgClient client(server_.fx().env(), server_.port());
  query(server_, client, "CREATE TABLE a");
  query(server_, client, "CREATE TABLE b");
  query(server_, client, "INSERT a k v");
  query(server_, client, "INSERT b k v");
  query(server_, client, "INSERT b k2 v");
  EXPECT_EQ(server_.total_rows(), 3u);
}

TEST_F(MinipgTest, DropTableRemovesRelation) {
  PgClient client(server_.fx().env(), server_.port());
  query(server_, client, "CREATE TABLE temp");
  query(server_, client, "INSERT temp k v");
  EXPECT_EQ(query(server_, client, "DROP TABLE temp"), "DROP TABLE");
  EXPECT_EQ(query(server_, client, "SELECT temp k"),
            "ERROR: relation does not exist");
  EXPECT_EQ(query(server_, client, "DROP TABLE temp"),
            "ERROR: relation does not exist");
  // The slot is reusable.
  EXPECT_EQ(query(server_, client, "CREATE TABLE temp"), "CREATE TABLE");
  EXPECT_EQ(query(server_, client, "SELECT temp k"), "(0 rows)");
}

TEST_F(MinipgTest, ScanListsAllRows) {
  PgClient client(server_.fx().env(), server_.port());
  query(server_, client, "CREATE TABLE t");
  query(server_, client, "INSERT t a 1");
  query(server_, client, "INSERT t b 2");
  const std::string result = query(server_, client, "SCAN t");
  EXPECT_NE(result.find("a=1"), std::string::npos);
  EXPECT_NE(result.find("b=2"), std::string::npos);
  EXPECT_NE(result.find("(2 rows)"), std::string::npos);
  EXPECT_EQ(query(server_, client, "SCAN missing"),
            "ERROR: relation does not exist");
}

TEST_F(MinipgTest, VacuumPreservesData) {
  PgClient client(server_.fx().env(), server_.port());
  query(server_, client, "CREATE TABLE t");
  for (int i = 0; i < 20; ++i)
    query(server_, client, "INSERT t key" + std::to_string(i) + " v");
  for (int i = 0; i < 10; ++i)
    query(server_, client, "DELETE t key" + std::to_string(i));
  EXPECT_EQ(query(server_, client, "VACUUM"), "VACUUM 10");
  EXPECT_EQ(server_.total_rows(), 10u);
  EXPECT_EQ(query(server_, client, "SELECT t key15"), "v\n(1 row)");
}

TEST_F(MinipgTest, CrashDuringVacuumPreservesRelation) {
  PgClient client(server_.fx().env(), server_.port());
  query(server_, client, "CREATE TABLE t");
  for (int i = 0; i < 8; ++i)
    query(server_, client, "INSERT t row" + std::to_string(i) + " v");

  server_.fx().hsfi().set_profiling(true);
  query(server_, client, "VACUUM");
  MarkerId target = kInvalidMarker;
  for (const Marker& m : server_.fx().hsfi().markers())
    if (m.name == "vacuum" && m.executions > 0) target = m.id;
  ASSERT_NE(target, kInvalidMarker);
  server_.fx().hsfi().arm(
      FaultPlan{target, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
  client.send_query("VACUUM");
  for (int i = 0; i < 8; ++i) server_.run_once();
  server_.fx().hsfi().disarm();

  EXPECT_EQ(server_.total_rows(), 8u);  // rolled back, nothing lost
  PgClient fresh(server_.fx().env(), server_.port());
  EXPECT_EQ(query(server_, fresh, "SELECT t row3"), "v\n(1 row)");
}

}  // namespace
}  // namespace fir
