// Serving fast-path tests: HTTP/1.1 pipelining out of buffered leftovers,
// keepalive boundaries, the FIR_KEEPALIVE / FIR_PIPELINE_MAX / FIR_WRITEV
// knobs, and crash recovery at every position of a pipelined batch.
//
// These drive the cooperative run_once() loop directly over raw sockets so
// the tests control exactly how request bytes are split across reads.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "apps/miniginx.h"
#include "workload/http_client.h"

namespace fir {
namespace {

TxManagerConfig stm_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

/// Pumps the server and drains everything the connection has to offer.
std::string pump_and_drain(Miniginx& server, int fd, int passes = 8) {
  Env& env = server.fx().env();
  std::string out;
  char buf[65536];
  for (int i = 0; i < passes; ++i) {
    server.run_once();
    for (;;) {
      const ssize_t r = env.recv(fd, buf, sizeof(buf));
      if (r <= 0) break;
      out.append(buf, static_cast<std::size_t>(r));
    }
  }
  return out;
}

std::size_t count_of(std::string_view haystack, std::string_view needle) {
  std::size_t n = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string_view::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

TEST(MiniginxServingTest, SplitReadMidRequestLineCompletesAcrossEvents) {
  Miniginx server(stm_cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  Env& env = server.fx().env();
  const int fd = env.connect_to(server.port());
  ASSERT_GE(fd, 0);

  // First fragment ends in the middle of the request line; the server must
  // buffer it and keep the connection in the reading state.
  const char* full = "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n";
  env.send(fd, full, 9);  // "GET /inde"
  std::string out = pump_and_drain(server, fd, 3);
  EXPECT_TRUE(out.empty()) << "responded to a half request: " << out;

  env.send(fd, full + 9, std::strlen(full) - 9);
  out = pump_and_drain(server, fd);
  EXPECT_NE(out.find("200 OK"), std::string::npos);
  env.close(fd);
  server.stop();
}

TEST(MiniginxServingTest, EightPipelinedRequestsInOneReadAllAnswerInOrder) {
  Miniginx server(stm_cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  Env& env = server.fx().env();
  const int fd = env.connect_to(server.port());
  ASSERT_GE(fd, 0);

  std::string reqs;
  for (int i = 0; i < 8; ++i)
    reqs += "GET /about.txt HTTP/1.1\r\nHost: x\r\n\r\n";
  env.send(fd, reqs.data(), reqs.size());
  const std::string out = pump_and_drain(server, fd);
  EXPECT_EQ(count_of(out, "200 OK"), 8u);
  // One readiness event parsed the whole batch (default FIR_PIPELINE_MAX=8).
  EXPECT_EQ(server.counters().requests_ok.get(), 8u);
  EXPECT_EQ(server.counters().connections_accepted.get(), 1u);
  env.close(fd);
  server.stop();
}

TEST(MiniginxServingTest, LeftoverBytesCarryAcrossKeepaliveBoundary) {
  Miniginx server(stm_cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  Env& env = server.fx().env();
  const int fd = env.connect_to(server.port());
  ASSERT_GE(fd, 0);

  // One full request plus the head of a second: the second's bytes must
  // survive the first's response flush and complete on the next send.
  const char* first = "GET /about.txt HTTP/1.1\r\nHost: x\r\n\r\n";
  const char* second = "GET /api.json HTTP/1.1\r\nHost: x\r\n\r\n";
  std::string batch(first);
  batch.append(second, 20);  // "GET /api.json HTTP/1"
  env.send(fd, batch.data(), batch.size());
  std::string out = pump_and_drain(server, fd);
  EXPECT_EQ(count_of(out, "200 OK"), 1u);
  EXPECT_NE(out.find("text/plain"), std::string::npos);

  env.send(fd, second + 20, std::strlen(second) - 20);
  out = pump_and_drain(server, fd);
  EXPECT_EQ(count_of(out, "200 OK"), 1u);
  EXPECT_NE(out.find("application/json"), std::string::npos);
  env.close(fd);
  server.stop();
}

TEST(MiniginxServingTest, PipelineMaxOneStillAnswersEverythingEventually) {
  ::setenv("FIR_PIPELINE_MAX", "1", 1);
  Miniginx server(stm_cfg());
  ::unsetenv("FIR_PIPELINE_MAX");
  ASSERT_EQ(server.serving().pipeline_max, 1);
  ASSERT_TRUE(server.start(0).is_ok());
  Env& env = server.fx().env();
  const int fd = env.connect_to(server.port());
  ASSERT_GE(fd, 0);

  std::string reqs;
  for (int i = 0; i < 4; ++i)
    reqs += "GET /about.txt HTTP/1.1\r\nHost: x\r\n\r\n";
  env.send(fd, reqs.data(), reqs.size());
  const std::string out = pump_and_drain(server, fd, 16);
  EXPECT_EQ(count_of(out, "200 OK"), 4u);
  env.close(fd);
  server.stop();
}

TEST(MiniginxServingTest, KeepaliveOffClosesAfterEachResponse) {
  ::setenv("FIR_KEEPALIVE", "0", 1);
  Miniginx server(stm_cfg());
  ::unsetenv("FIR_KEEPALIVE");
  ASSERT_FALSE(server.serving().keep_alive);
  ASSERT_TRUE(server.start(0).is_ok());
  Env& env = server.fx().env();

  for (int i = 0; i < 3; ++i) {
    const int fd = env.connect_to(server.port());
    ASSERT_GE(fd, 0);
    const char* req = "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n";
    env.send(fd, req, std::strlen(req));
    const std::string out = pump_and_drain(server, fd);
    EXPECT_NE(out.find("200 OK"), std::string::npos);
    EXPECT_NE(out.find("Connection: close"), std::string::npos);
    // The server closed its side: a further read reports EOF (0), not
    // EAGAIN.
    char buf[64];
    EXPECT_EQ(env.recv(fd, buf, sizeof(buf)), 0);
    env.close(fd);
  }
  EXPECT_EQ(server.counters().connections_accepted.get(), 3u);
  server.stop();
}

TEST(MiniginxServingTest, WritevOffProducesIdenticalBytes) {
  const char* reqs =
      "GET /about.txt HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /page.shtml HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /missing.html HTTP/1.1\r\nHost: x\r\n\r\n";
  std::string outputs[2];
  for (int writev_on = 0; writev_on < 2; ++writev_on) {
    ::setenv("FIR_WRITEV", writev_on ? "1" : "0", 1);
    Miniginx server(stm_cfg());
    ::unsetenv("FIR_WRITEV");
    ASSERT_EQ(server.serving().use_writev, writev_on == 1);
    ASSERT_TRUE(server.start(0).is_ok());
    Env& env = server.fx().env();
    const int fd = env.connect_to(server.port());
    ASSERT_GE(fd, 0);
    env.send(fd, reqs, std::strlen(reqs));
    outputs[writev_on] = pump_and_drain(server, fd, 16);
    env.close(fd);
    server.stop();
  }
  EXPECT_FALSE(outputs[0].empty());
  EXPECT_EQ(outputs[0], outputs[1]);
}

// Crash recovery inside a pipelined batch: the §VI-F SSI NULL-dereference
// fires at each position of a 4-deep pipeline in turn. The crashing
// request must divert to its 500 while every sibling request in the SAME
// batch is answered normally — the recovery scope is one request, not the
// connection.
TEST(MiniginxServingTest, CrashAtEachPipelinePositionSparesSiblings) {
  for (int crash_at = 0; crash_at < 4; ++crash_at) {
    Miniginx server(stm_cfg());
    server.enable_ssi_null_bug(true);
    ASSERT_TRUE(server.start(0).is_ok());
    Env& env = server.fx().env();
    const int fd = env.connect_to(server.port());
    ASSERT_GE(fd, 0);

    std::string reqs;
    for (int i = 0; i < 4; ++i) {
      reqs += i == crash_at
                  ? "GET /broken.shtml HTTP/1.1\r\nHost: x\r\n\r\n"
                  : "GET /about.txt HTTP/1.1\r\nHost: x\r\n\r\n";
    }
    env.send(fd, reqs.data(), reqs.size());
    const std::string out = pump_and_drain(server, fd, 16);
    EXPECT_EQ(count_of(out, "200 OK"), 3u) << "crash_at=" << crash_at;
    EXPECT_EQ(count_of(out, "500 Internal Server Error"), 1u)
        << "crash_at=" << crash_at;
    // The diverted 500 arrives in pipeline order, not first or last.
    std::size_t pos = 0;
    int index_of_500 = -1;
    for (int i = 0; i < 4; ++i) {
      pos = out.find("HTTP/1.1 ", pos);
      ASSERT_NE(pos, std::string::npos) << "crash_at=" << crash_at;
      if (out.compare(pos + 9, 3, "500") == 0) index_of_500 = i;
      pos += 9;
    }
    EXPECT_EQ(index_of_500, crash_at);
    // Exactly one recovery episode, confined to the crashing request.
    EXPECT_GE(server.fx().mgr().metrics().counter("recovery.diversions")
                  .value(), 1u);
    env.close(fd);
    server.stop();
  }
}

// FIR_COALESCE=0 must not change what the client observes: same pipelined
// batch, same crash, same responses — the kill switch only changes how
// checkpoints amortize, never divert behaviour.
TEST(MiniginxServingTest, CoalesceOffKeepsDivertBehaviourIdentical) {
  std::string outputs[2];
  for (int coalesce_on = 0; coalesce_on < 2; ++coalesce_on) {
    ::setenv("FIR_COALESCE", coalesce_on ? "1" : "0", 1);
    Miniginx server(stm_cfg());
    server.enable_ssi_null_bug(true);
    ::unsetenv("FIR_COALESCE");
    ASSERT_TRUE(server.start(0).is_ok());
    Env& env = server.fx().env();
    const int fd = env.connect_to(server.port());
    ASSERT_GE(fd, 0);
    const char* reqs =
        "GET /about.txt HTTP/1.1\r\nHost: x\r\n\r\n"
        "GET /broken.shtml HTTP/1.1\r\nHost: x\r\n\r\n"
        "GET /about.txt HTTP/1.1\r\nHost: x\r\n\r\n";
    env.send(fd, reqs, std::strlen(reqs));
    outputs[coalesce_on] = pump_and_drain(server, fd, 16);
    env.close(fd);
    server.stop();
  }
  EXPECT_FALSE(outputs[0].empty());
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(count_of(outputs[0], "200 OK"), 2u);
  EXPECT_EQ(count_of(outputs[0], "500 Internal Server Error"), 1u);
}

}  // namespace
}  // namespace fir
