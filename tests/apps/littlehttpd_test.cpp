#include <gtest/gtest.h>

#include "apps/littlehttpd.h"
#include "workload/http_client.h"

namespace fir {
namespace {

TxManagerConfig stm_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

HttpClient::Response exchange(Littlehttpd& server, HttpClient& client,
                              std::string_view method,
                              std::string_view target,
                              std::string_view body = {}) {
  EXPECT_TRUE(client.connected() || client.connect());
  EXPECT_TRUE(client.send_request(method, target, body));
  HttpClient::Response response;
  for (int i = 0; i < 16; ++i) {
    server.run_once();
    if (client.try_read_response(response) == 1) return response;
  }
  ADD_FAILURE() << "no response for " << method << " " << target;
  return response;
}

class LittlehttpdTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(server_.start(0).is_ok()); }
  Littlehttpd server_{stm_cfg()};
};

TEST_F(LittlehttpdTest, ServesStaticFiles) {
  HttpClient client(server_.fx().env(), server_.port());
  const auto response = exchange(server_, client, "GET", "/readme.txt");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("small and fast"), std::string::npos);
}

TEST_F(LittlehttpdTest, ChunkedWriterDeliversLargeBody) {
  HttpClient client(server_.fx().env(), server_.port());
  const auto response = exchange(server_, client, "GET", "/blob.bin");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.size(), 6000u);
}

TEST_F(LittlehttpdTest, WebdavPropfindReportsSize) {
  HttpClient client(server_.fx().env(), server_.port());
  const auto response =
      exchange(server_, client, "PROPFIND", "/dav/notes.txt");
  EXPECT_EQ(response.status, 207);
  EXPECT_NE(response.body.find("getcontentlength"), std::string::npos);
}

TEST_F(LittlehttpdTest, WebdavPutCreatesAndDeleteRemoves) {
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(
      exchange(server_, client, "PUT", "/dav/new.txt", "fresh-content")
          .status,
      201);
  const auto got = exchange(server_, client, "GET", "/dav/new.txt");
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, "fresh-content");
  EXPECT_EQ(exchange(server_, client, "DELETE", "/dav/new.txt").status, 204);
  EXPECT_EQ(exchange(server_, client, "GET", "/dav/new.txt").status, 403);
  EXPECT_EQ(exchange(server_, client, "DELETE", "/dav/new.txt").status, 404);
}

TEST_F(LittlehttpdTest, MixedDavAndStaticWithoutBugIsFine) {
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(exchange(server_, client, "PROPFIND", "/dav/notes.txt").status,
            207);
  EXPECT_EQ(exchange(server_, client, "GET", "/index.html").status, 200);
  EXPECT_EQ(exchange(server_, client, "PROPFIND", "/dav/notes.txt").status,
            207);
}

TEST_F(LittlehttpdTest, WebdavUafBugCrashIsRecoveredTo403) {
  // lighttpd #2780 (§VI-F): WebDAV then a mixed request on the same
  // keep-alive connection dereferences the stale DAV handle. FIRestarter
  // diverts at the open64 gate and the server answers 403 - Forbidden.
  server_.enable_webdav_uaf_bug(true);
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(exchange(server_, client, "PROPFIND", "/dav/notes.txt").status,
            207);
  const auto response = exchange(server_, client, "GET", "/index.html");
  EXPECT_EQ(response.status, 403);
  EXPECT_NE(response.body.find("Forbidden"), std::string::npos);
  // The server survived: subsequent fresh connections are served.
  HttpClient fresh(server_.fx().env(), server_.port());
  EXPECT_EQ(exchange(server_, fresh, "GET", "/readme.txt").status, 200);
  std::uint64_t diversions = 0;
  for (const Site& s : server_.fx().mgr().sites().all())
    diversions += s.stats.diversions;
  EXPECT_GE(diversions, 1u);
}

TEST_F(LittlehttpdTest, WithoutProtectionUafBugKillsServer) {
  Littlehttpd unprotected{[] {
    TxManagerConfig c;
    c.policy.kind = PolicyKind::kUnprotected;
    return c;
  }()};
  ASSERT_TRUE(unprotected.start(0).is_ok());
  unprotected.enable_webdav_uaf_bug(true);
  HttpClient client(unprotected.fx().env(), unprotected.port());
  EXPECT_EQ(exchange(unprotected, client, "PROPFIND", "/dav/notes.txt")
                .status,
            207);
  ASSERT_TRUE(client.send_request("GET", "/index.html"));
  EXPECT_THROW(
      {
        for (int i = 0; i < 4; ++i) unprotected.run_once();
      },
      FatalCrashError);
}

TEST_F(LittlehttpdTest, ErrorLogRecordsFailures) {
  HttpClient client(server_.fx().env(), server_.port());
  exchange(server_, client, "GET", "/no/such/file");
  auto log = server_.fx().env().vfs().lookup("/logs/error.log");
  ASSERT_NE(log, nullptr);
  EXPECT_GT(log->data.size(), 0u);
}

TEST_F(LittlehttpdTest, OptionsAnswers204) {
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(exchange(server_, client, "OPTIONS", "/").status, 204);
}

TEST_F(LittlehttpdTest, MkcolCreatesCollectionOnce) {
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(exchange(server_, client, "MKCOL", "/dav/newdir").status, 201);
  EXPECT_TRUE(server_.fx().env().vfs().exists("/srv/dav/newdir/.collection"));
  EXPECT_EQ(exchange(server_, client, "MKCOL", "/dav/newdir").status, 405);
}

}  // namespace
}  // namespace fir
