#include <gtest/gtest.h>

#include "apps/http.h"

namespace fir::http {
namespace {

TEST(HttpParseTest, SimpleGet) {
  Request req;
  const auto r = parse_request(
      "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n", req);
  EXPECT_EQ(r, ParseResult::kComplete);
  EXPECT_EQ(req.method, Method::kGet);
  EXPECT_EQ(req.path, "/index.html");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.host, "x");
  EXPECT_TRUE(req.keep_alive);
}

TEST(HttpParseTest, QuerySplit) {
  Request req;
  parse_request("GET /a?b=1&c=2 HTTP/1.1\r\n\r\n", req);
  EXPECT_EQ(req.path, "/a");
  EXPECT_EQ(req.query, "b=1&c=2");
}

TEST(HttpParseTest, IncompleteNeedsMoreBytes) {
  Request req;
  EXPECT_EQ(parse_request("GET / HTTP/1.1\r\nHost:", req),
            ParseResult::kIncomplete);
}

TEST(HttpParseTest, BodyViaContentLength) {
  Request req;
  const auto r = parse_request(
      "PUT /f HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello", req);
  EXPECT_EQ(r, ParseResult::kComplete);
  EXPECT_EQ(req.body, "hello");
  EXPECT_EQ(req.content_length, 5u);
}

TEST(HttpParseTest, PartialBodyIsIncomplete) {
  Request req;
  EXPECT_EQ(parse_request(
                "PUT /f HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel", req),
            ParseResult::kIncomplete);
}

TEST(HttpParseTest, MalformedRequestLineIsBad) {
  Request req;
  EXPECT_EQ(parse_request("GARBAGE\r\n\r\n", req), ParseResult::kBad);
  EXPECT_EQ(parse_request("GET noslash HTTP/1.1\r\n\r\n", req),
            ParseResult::kBad);
  EXPECT_EQ(parse_request("GET / FTP/1.0\r\n\r\n", req), ParseResult::kBad);
}

TEST(HttpParseTest, ConnectionHeaderOverridesDefault) {
  Request req;
  parse_request("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", req);
  EXPECT_FALSE(req.keep_alive);
  parse_request("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", req);
  EXPECT_TRUE(req.keep_alive);
  parse_request("GET / HTTP/1.0\r\n\r\n", req);
  EXPECT_FALSE(req.keep_alive);
}

TEST(HttpParseTest, OversizeContentLengthRejected) {
  Request req;
  EXPECT_EQ(parse_request(
                "PUT /f HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", req),
            ParseResult::kBad);
  EXPECT_EQ(parse_request(
                "PUT /f HTTP/1.1\r\nContent-Length: 12x\r\n\r\n", req),
            ParseResult::kBad);
}

TEST(HttpFormatTest, ResponseRoundTrip) {
  char buf[256];
  const std::size_t n =
      format_response(buf, sizeof(buf), 200, "OK", "text/plain", "hi", true);
  ASSERT_GT(n, 0u);
  const std::string_view out(buf, n);
  EXPECT_NE(out.find("HTTP/1.1 200 OK\r\n"), std::string_view::npos);
  EXPECT_NE(out.find("Content-Length: 2\r\n"), std::string_view::npos);
  EXPECT_TRUE(out.ends_with("hi"));
}

TEST(HttpFormatTest, OverflowReturnsZero) {
  char buf[16];
  EXPECT_EQ(format_response(buf, sizeof(buf), 200, "OK", "text/plain",
                            "payload-too-big", true),
            0u);
}

TEST(HttpMiscTest, ReasonPhrases) {
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(207), "Multi-Status");
  EXPECT_EQ(reason_phrase(599), "Unknown");
}

TEST(HttpMiscTest, MimeTypes) {
  EXPECT_EQ(mime_type("/a.html"), "text/html");
  EXPECT_EQ(mime_type("/a.shtml"), "text/html");
  EXPECT_EQ(mime_type("/a.json"), "application/json");
  EXPECT_EQ(mime_type("/noext"), "application/octet-stream");
}

TEST(HttpMiscTest, UnsafePaths) {
  EXPECT_TRUE(path_is_unsafe("/../etc/passwd"));
  EXPECT_TRUE(path_is_unsafe("/a/../../b"));
  EXPECT_FALSE(path_is_unsafe("/a..b/c"));
  EXPECT_FALSE(path_is_unsafe("/normal/path.html"));
}

TEST(HttpMiscTest, UrlDecode) {
  char out[32];
  EXPECT_EQ(url_decode("/a%20b+c", out, sizeof(out)), 6u);
  EXPECT_EQ(std::string_view(out, 6), "/a b c");
  EXPECT_EQ(url_decode("%4", out, sizeof(out)), 0u);   // truncated escape
  EXPECT_EQ(url_decode("%zz", out, sizeof(out)), 0u);  // bad hex
  char tiny[2];
  EXPECT_EQ(url_decode("abcdef", tiny, sizeof(tiny)), 0u);  // overflow
}

TEST(HttpRangeTest, ParseForms) {
  ByteRange r = parse_range("bytes=0-99");
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.first, 0u);
  EXPECT_EQ(r.last, 99u);

  r = parse_range("bytes=100-");
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.first, 100u);

  r = parse_range("bytes=-50");
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.suffix);
  EXPECT_EQ(r.last, 50u);
}

TEST(HttpRangeTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_range("items=0-1").valid);
  EXPECT_FALSE(parse_range("bytes=5-2").valid);
  EXPECT_FALSE(parse_range("bytes=0-1,3-4").valid);  // multi-range
  EXPECT_FALSE(parse_range("bytes=a-b").valid);
  EXPECT_FALSE(parse_range("bytes=-").valid);
  EXPECT_FALSE(parse_range("bytes=-0").valid);
}

TEST(HttpRangeTest, ResolveClampsAndRejects) {
  ByteRange r = parse_range("bytes=10-9999");
  ASSERT_TRUE(resolve_range(r, 100));
  EXPECT_EQ(r.last, 99u);

  r = parse_range("bytes=-30");
  ASSERT_TRUE(resolve_range(r, 100));
  EXPECT_EQ(r.first, 70u);
  EXPECT_EQ(r.last, 99u);

  r = parse_range("bytes=100-");
  EXPECT_FALSE(resolve_range(r, 100));  // first == size: unsatisfiable
  r = parse_range("bytes=0-1");
  EXPECT_FALSE(resolve_range(r, 0));    // empty resource
}

TEST(HttpRangeTest, RequestCarriesRangeHeader) {
  Request req;
  parse_request(
      "GET /f HTTP/1.1\r\nRange: bytes=0-4\r\n\r\n", req);
  EXPECT_EQ(req.range, "bytes=0-4");
}

}  // namespace
}  // namespace fir::http
