#include <gtest/gtest.h>

#include "apps/apachette.h"
#include "workload/http_client.h"

namespace fir {
namespace {

TxManagerConfig stm_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

HttpClient::Response get(Apachette& server, HttpClient& client,
                         std::string_view target,
                         std::string_view method = "GET") {
  EXPECT_TRUE(client.connected() || client.connect());
  EXPECT_TRUE(client.send_request(method, target));
  HttpClient::Response response;
  for (int i = 0; i < 8; ++i) {
    server.run_once();
    if (client.try_read_response(response) == 1) return response;
  }
  ADD_FAILURE() << "no response for " << target;
  return response;
}

class ApachetteTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(server_.start(0).is_ok()); }
  Apachette server_{stm_cfg()};
};

TEST_F(ApachetteTest, ServesStaticContent) {
  HttpClient client(server_.fx().env(), server_.port());
  const auto response = get(server_, client, "/manual.txt");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("reference manual"), std::string::npos);
}

TEST_F(ApachetteTest, HtaccessDeniesProtectedDirectory) {
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(get(server_, client, "/private/secret.txt").status, 403);
  // The sibling public tree stays reachable.
  EXPECT_EQ(get(server_, client, "/index.html").status, 200);
}

TEST_F(ApachetteTest, CgiEchoHandlerDecodesQuery) {
  HttpClient client(server_.fx().env(), server_.port());
  const auto response = get(server_, client, "/index.html?cgi=hello+world");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("cgi-echo: hello world"), std::string::npos);
}

TEST_F(ApachetteTest, WritesAccessLog) {
  HttpClient client(server_.fx().env(), server_.port());
  get(server_, client, "/index.html");
  get(server_, client, "/missing");
  auto log = server_.fx().env().vfs().lookup("/logs/access.log");
  ASSERT_NE(log, nullptr);
  const std::string content(log->data.begin(), log->data.end());
  EXPECT_NE(content.find("\"GET /index.html\" 200"), std::string::npos);
  EXPECT_NE(content.find("\"GET /missing\" 404"), std::string::npos);
}

TEST_F(ApachetteTest, RecordsEmbeddedHelperCalls) {
  HttpClient client(server_.fx().env(), server_.port());
  for (int i = 0; i < 3; ++i) get(server_, client, "/index.html");
  // Apache-style density: strlen/getpid/time/memcmp embedded calls.
  std::uint64_t embedded = 0;
  for (const Site& s : server_.fx().mgr().sites().all())
    embedded += s.stats.embedded_calls;
  EXPECT_GT(embedded, 9u);
}

TEST_F(ApachetteTest, KeepAliveWorkerHandlesSequentialRequests) {
  HttpClient client(server_.fx().env(), server_.port());
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(get(server_, client, "/data.bin").status, 200);
  EXPECT_EQ(server_.counters().connections_accepted.get(), 1u);
}

TEST_F(ApachetteTest, TraversalRejected) {
  HttpClient client(server_.fx().env(), server_.port());
  EXPECT_EQ(get(server_, client, "/../conf/secrets").status, 403);
}

TEST_F(ApachetteTest, StopReleasesFds) {
  HttpClient client(server_.fx().env(), server_.port());
  get(server_, client, "/");
  client.close();
  server_.run_once();
  server_.stop();
  EXPECT_EQ(server_.fx().env().open_fd_count(), 0u);
}

TEST_F(ApachetteTest, ServerStatusReportsCounters) {
  HttpClient client(server_.fx().env(), server_.port());
  get(server_, client, "/index.html");
  const auto status = get(server_, client, "/server-status");
  EXPECT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("requests-ok: 1"), std::string::npos);
  EXPECT_NE(status.body.find("workers-live: 1"), std::string::npos);
}

TEST_F(ApachetteTest, StatusPageCrashDivertsAtMemalign) {
  // A persistent crash in mod_status diverts at its posix_memalign gate
  // (one of the paper's named abort-prone allocation sites): the handler
  // answers 503 and the server keeps serving.
  server_.fx().hsfi().set_profiling(true);
  HttpClient client(server_.fx().env(), server_.port());
  get(server_, client, "/server-status");
  MarkerId target = kInvalidMarker;
  for (const Marker& m : server_.fx().hsfi().markers())
    if (m.name == "mod_status" && m.executions > 0) target = m.id;
  ASSERT_NE(target, kInvalidMarker);
  server_.fx().hsfi().arm(
      FaultPlan{target, FaultType::kPersistentCrash, CrashKind::kSegv, 1});

  const auto crashed = get(server_, client, "/server-status");
  EXPECT_EQ(crashed.status, 503);
  server_.fx().hsfi().disarm();
  EXPECT_EQ(get(server_, client, "/index.html").status, 200);
  EXPECT_EQ(server_.fx().env().stats().heap_bytes, 0u);  // nothing leaked
}

}  // namespace
}  // namespace fir
