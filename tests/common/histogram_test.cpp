#include <gtest/gtest.h>

#include "common/histogram.h"

namespace fir {
namespace {

TEST(HistogramTest, EmptyBasics) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, MeanMinMax) {
  Histogram h;
  for (double v : {4.0, 2.0, 6.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
}

TEST(HistogramTest, PercentileInterpolation) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_NEAR(h.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.percentile(99), 99.01, 0.1);
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(3.0);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-12);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.add(1.0);
  h.clear();
  EXPECT_TRUE(h.empty());
}

TEST(HistogramTest, AddAfterPercentileQueryStaysSorted) {
  Histogram h;
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
}

}  // namespace
}  // namespace fir
