#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/histogram.h"

namespace fir {
namespace {

TEST(HistogramTest, EmptyBasics) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, MeanMinMax) {
  Histogram h;
  for (double v : {4.0, 2.0, 6.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
}

TEST(HistogramTest, PercentileInterpolation) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_NEAR(h.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.percentile(99), 99.01, 0.1);
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(3.0);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-12);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.add(1.0);
  h.clear();
  EXPECT_TRUE(h.empty());
}

TEST(HistogramTest, AddAfterPercentileQueryStaysSorted) {
  Histogram h;
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
}

// --- LogHistogram -----------------------------------------------------------

TEST(LogHistogramTest, EmptyBasics) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.value_at_percentile(50), 0u);
}

TEST(LogHistogramTest, SmallValuesAreExact) {
  // Values below kSubBucketCount get their own bucket: percentiles are exact.
  LogHistogram h;
  for (std::uint64_t v = 0; v < LogHistogram::kSubBucketCount; ++v) h.record(v);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), LogHistogram::kSubBucketCount - 1);
  EXPECT_EQ(h.value_at_percentile(0), 0u);
  EXPECT_EQ(h.value_at_percentile(100), LogHistogram::kSubBucketCount - 1);
  // Nearest-rank: the 50th percentile of 0..63 is value 31.
  EXPECT_EQ(h.value_at_percentile(50), 31u);
}

TEST(LogHistogramTest, CountMinMaxMean) {
  LogHistogram h;
  h.record(100);
  h.record(1000, 3);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), (100.0 + 3 * 1000.0) / 4.0);
}

TEST(LogHistogramTest, MergeMatchesCombinedRecording) {
  LogHistogram a, b, both;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() % 1000000;
    ((i % 2) ? a : b).record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.value_at_percentile(p), both.value_at_percentile(p)) << p;
  }
}

TEST(LogHistogramTest, MergeIntoEmptyAndClear) {
  LogHistogram a, b;
  b.record(42);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42u);
  EXPECT_EQ(a.max(), 42u);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.value_at_percentile(99), 0u);
  a.record(7);
  EXPECT_EQ(a.min(), 7u);
  EXPECT_EQ(a.max(), 7u);
}

// Oracle helper: assert every queried percentile of the log-bucketed
// recorder lands within kMaxRelativeError of the exact order statistics.
// The exact percentile convention (interpolated) and the log recorder's
// (nearest-rank bucket midpoint) straddle at most one sample, so compare
// against the closed interval [floor-rank sample, ceil-rank sample].
void ExpectPercentilesWithinBound(const std::vector<std::uint64_t>& samples) {
  LogHistogram log_h;
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t v : samples) log_h.record(v);

  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::uint64_t lo_exact = sorted[static_cast<std::size_t>(rank)];
    const std::uint64_t hi_exact =
        sorted[std::min(static_cast<std::size_t>(std::ceil(rank)),
                        sorted.size() - 1)];
    const double reported =
        static_cast<double>(log_h.value_at_percentile(p));
    const double lo_bound =
        static_cast<double>(lo_exact) * (1.0 - LogHistogram::kMaxRelativeError);
    const double hi_bound =
        static_cast<double>(hi_exact) * (1.0 + LogHistogram::kMaxRelativeError);
    EXPECT_GE(reported, lo_bound) << "p" << p;
    EXPECT_LE(reported, hi_bound) << "p" << p;
  }
}

TEST(LogHistogramTest, AccuracyUniform) {
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::uint64_t> dist(1, 2000000);  // ~ns latencies
  std::vector<std::uint64_t> samples(20000);
  for (auto& s : samples) s = dist(rng);
  ExpectPercentilesWithinBound(samples);
}

TEST(LogHistogramTest, AccuracyExponential) {
  // Long-tailed, like service latency: most samples small, rare huge ones.
  std::mt19937_64 rng(2);
  std::exponential_distribution<double> dist(1.0 / 50000.0);
  std::vector<std::uint64_t> samples(20000);
  for (auto& s : samples) s = static_cast<std::uint64_t>(dist(rng)) + 1;
  ExpectPercentilesWithinBound(samples);
}

TEST(LogHistogramTest, AccuracyBimodal) {
  // Fast path + slow path mixture (e.g. cache hit vs disk read).
  std::mt19937_64 rng(3);
  std::normal_distribution<double> fast(2000.0, 100.0);
  std::normal_distribution<double> slow(900000.0, 30000.0);
  std::vector<std::uint64_t> samples(20000);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double v = (rng() % 10 < 8) ? fast(rng) : slow(rng);
    samples[i] = static_cast<std::uint64_t>(std::max(v, 1.0));
  }
  ExpectPercentilesWithinBound(samples);
}

TEST(LogHistogramTest, AccuracyAcrossOctavesIncludingHuge) {
  // Spot-check the bucket midpoint math across the whole 64-bit range: two
  // copies of v plus one max-value sentinel make p50 land in v's bucket
  // without the min/max clamp collapsing the answer to v itself.
  std::mt19937_64 rng(4);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = std::max<std::uint64_t>((rng() | 1) >> (rng() % 64), 1);
    LogHistogram h;
    h.record(v, 2);
    h.record(~0ull);
    const double reported = static_cast<double>(h.value_at_percentile(50));
    const double exact = static_cast<double>(v);
    EXPECT_NEAR(reported, exact, exact * LogHistogram::kMaxRelativeError + 0.5)
        << "value=" << v;
    EXPECT_EQ(h.min(), v);
    EXPECT_EQ(h.max(), ~0ull);
  }
}

TEST(LogHistogramTest, FixedFootprint) {
  LogHistogram h;
  const std::size_t before = h.footprint_bytes();
  std::mt19937_64 rng(5);
  for (int i = 0; i < 100000; ++i) h.record(rng());
  EXPECT_EQ(h.footprint_bytes(), before);  // record() never allocates
  EXPECT_LT(before, 64u * 1024u);          // stays comfortably small
}

}  // namespace
}  // namespace fir
