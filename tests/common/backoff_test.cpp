#include "common/backoff.h"

#include <gtest/gtest.h>

namespace fir {
namespace {

TEST(ExponentialBackoffTest, DoublesUpToCap) {
  ExponentialBackoff b;
  b.base_ms = 20;
  b.max_ms = 1000;
  b.jitter_frac = 0.0;
  EXPECT_EQ(b.base_delay_ms(0), 0u);
  EXPECT_EQ(b.base_delay_ms(1), 20u);
  EXPECT_EQ(b.base_delay_ms(2), 40u);
  EXPECT_EQ(b.base_delay_ms(3), 80u);
  EXPECT_EQ(b.base_delay_ms(6), 640u);
  EXPECT_EQ(b.base_delay_ms(7), 1000u);   // capped
  EXPECT_EQ(b.base_delay_ms(100), 1000u); // stays capped, no overflow
}

TEST(ExponentialBackoffTest, JitterIsBoundedAndDeterministic) {
  ExponentialBackoff b;
  b.base_ms = 100;
  b.max_ms = 10000;
  b.jitter_frac = 0.25;
  Rng rng_a(7);
  Rng rng_b(7);
  for (std::uint32_t attempt = 1; attempt <= 6; ++attempt) {
    const std::uint32_t base = b.base_delay_ms(attempt);
    const std::uint32_t d1 = b.delay_ms(attempt, rng_a);
    const std::uint32_t d2 = b.delay_ms(attempt, rng_b);
    EXPECT_EQ(d1, d2) << "same seed, same schedule";
    EXPECT_GE(d1, base);
    EXPECT_LE(d1, base + base / 4);
  }
}

TEST(ExponentialBackoffTest, ZeroJitterIsExact) {
  ExponentialBackoff b;
  b.jitter_frac = 0.0;
  Rng rng(1);
  EXPECT_EQ(b.delay_ms(1, rng), b.base_delay_ms(1));
}

TEST(FlapWindowTest, TripsAtThresholdWithinWindow) {
  FlapWindow flap(3, 1000);
  EXPECT_FALSE(flap.record(0));
  EXPECT_FALSE(flap.record(100));
  EXPECT_TRUE(flap.record(200));  // 3 events in 200ms < 1000ms window
  EXPECT_EQ(flap.events_in_window(), 3u);
}

TEST(FlapWindowTest, OldEventsSlideOut) {
  FlapWindow flap(3, 1000);
  EXPECT_FALSE(flap.record(0));
  EXPECT_FALSE(flap.record(100));
  // The first two events fall out of the trailing window.
  EXPECT_FALSE(flap.record(1500));
  EXPECT_FALSE(flap.record(1600));
  EXPECT_TRUE(flap.record(1700));
}

TEST(FlapWindowTest, ZeroThresholdNeverTrips) {
  FlapWindow flap(0, 1000);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(flap.record(static_cast<std::uint64_t>(i)));
}

TEST(FlapWindowTest, ResetForgets) {
  FlapWindow flap(2, 1000);
  EXPECT_FALSE(flap.record(10));
  flap.reset();
  EXPECT_FALSE(flap.record(20));  // would have tripped without the reset
  EXPECT_TRUE(flap.record(30));
}

}  // namespace
}  // namespace fir
