#include <gtest/gtest.h>

#include <string>

#include "common/crc32.h"
#include "common/walrec.h"

namespace fir {
namespace {

std::string encode(std::string_view payload) {
  char buf[kWalrecMaxPayload + kWalrecHeaderBytes];
  const std::size_t n = walrec_encode(buf, sizeof(buf), payload);
  EXPECT_GT(n, 0u);
  return std::string(buf, n);
}

TEST(WalrecTest, RoundTripsRecords) {
  const std::string log = encode("SET a 1") + encode("DEL a") + encode("");
  WalrecScanner scan(log);
  std::string_view payload;
  ASSERT_TRUE(scan.next(payload));
  EXPECT_EQ(payload, "SET a 1");
  ASSERT_TRUE(scan.next(payload));
  EXPECT_EQ(payload, "DEL a");
  ASSERT_TRUE(scan.next(payload));
  EXPECT_EQ(payload, "");
  EXPECT_FALSE(scan.next(payload));
  EXPECT_EQ(scan.valid_bytes(), log.size());
}

TEST(WalrecTest, CrcKnownAnswer) {
  // CRC-32("123456789") is the standard check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(WalrecTest, TornTailStopsScanAtLastValidRecord) {
  const std::string good = encode("SET a 1");
  std::string log = good + encode("SET b 2");
  log.resize(log.size() - 3);  // torn payload in the final record
  WalrecScanner scan(log);
  std::string_view payload;
  ASSERT_TRUE(scan.next(payload));
  EXPECT_FALSE(scan.next(payload));
  EXPECT_EQ(scan.valid_bytes(), good.size());
}

TEST(WalrecTest, TornHeaderStopsScan) {
  const std::string good = encode("SET a 1");
  const std::string log = good + "\x05\x00";  // half a length field
  WalrecScanner scan(log);
  std::string_view payload;
  ASSERT_TRUE(scan.next(payload));
  EXPECT_FALSE(scan.next(payload));
  EXPECT_EQ(scan.valid_bytes(), good.size());
}

TEST(WalrecTest, BitRotFailsChecksum) {
  std::string log = encode("SET key value");
  log[log.size() - 1] ^= 0x40;  // flip a payload bit
  WalrecScanner scan(log);
  std::string_view payload;
  EXPECT_FALSE(scan.next(payload));
  EXPECT_EQ(scan.valid_bytes(), 0u);
}

TEST(WalrecTest, GarbageLengthFieldRejected) {
  std::string log(kWalrecHeaderBytes + 16, '\xff');  // absurd length
  WalrecScanner scan(log);
  std::string_view payload;
  EXPECT_FALSE(scan.next(payload));
}

TEST(WalrecTest, EncodeRejectsOversizeAndTinyBuffers) {
  char buf[64];
  const std::string huge(kWalrecMaxPayload + 1, 'x');
  EXPECT_EQ(walrec_encode(buf, sizeof(buf), huge), 0u);
  EXPECT_EQ(walrec_encode(buf, 4, "hello"), 0u);
}

}  // namespace
}  // namespace fir
