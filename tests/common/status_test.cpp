#include <gtest/gtest.h>

#include "common/status.h"

namespace fir {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kNotFound, "missing file");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing file");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status(ErrorCode::kNotFound, "a"), Status(ErrorCode::kNotFound, "b"));
  EXPECT_FALSE(Status(ErrorCode::kNotFound, "a") ==
               Status(ErrorCode::kInternal, "a"));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kUnimplemented); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status(ErrorCode::kUnavailable, "later");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status fails() { return Status(ErrorCode::kInternal, "boom"); }
Status propagates() {
  FIR_RETURN_IF_ERROR(fails());
  return Status::ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(propagates().code(), ErrorCode::kInternal);
}

}  // namespace
}  // namespace fir
