#include <gtest/gtest.h>

#include "common/table.h"

namespace fir {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_NE(out.find("| 22 "), std::string::npos);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| x "), std::string::npos);
}

TEST(TextTableTest, EmptyTableRendersEmpty) {
  TextTable t;
  EXPECT_EQ(t.render(), "");
}

TEST(TextTableTest, SeparatorInsertsRule) {
  TextTable t;
  t.set_header({"h"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + separator + closing rule = at least 4 '+--' lines
  int rules = 0;
  for (std::size_t p = out.find("+-"); p != std::string::npos;
       p = out.find("+-", p + 1))
    ++rules;
  EXPECT_GE(rules, 4);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(format_percent(0.125, 1), "12.5%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace fir
