#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace fir {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace fir
