// Real POSIX signal crash channel: kernel-delivered faults drive the same
// rollback → retry → divert sequence as the synchronous channel, faults
// during recovery escalate to a diagnostic _exit, the hang watchdog turns
// spins into recovery episodes, and the crash-storm backstop skips futile
// retries. Every case that takes a real fault runs as a death test (its own
// forked child), so a channel bug cannot take the whole suite down with it.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "interpose/fir.h"

namespace fir {
namespace {

using ::testing::ExitedWithCode;
using ::testing::KilledBySignal;

/// Read through a volatile global so the compiler cannot constant-fold the
/// null pointer: the store must survive to runtime and take the MMU fault.
volatile std::uintptr_t g_null_addr = 0;

void real_segv() {
  auto* p = reinterpret_cast<volatile int*>(g_null_addr);
  *p = 1;
}

/// Kernel-delivered SIGFPE. raise(), not 1/0: some virtualized hosts
/// (including this repo's CI) emulate integer #DE without trapping, so the
/// division is not a reliable fault source. The delivery path through the
/// channel handler is identical.
void real_fpe() { std::raise(SIGFPE); }

TxManagerConfig signal_config() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;  // no HTM hop: one episode per crash
  c.real_signals = true;
  return c;
}

TEST(CrashSignalDeathTest, RealSegvRollsBackRetriesAndDiverts) {
  EXPECT_EXIT(
      {
        Fx fx(signal_config());
        FIR_ANCHOR(fx);
        const int fd = static_cast<int>(FIR_SOCKET(fx));
        if (fd >= 0) real_segv();  // fires on every execution: persistent
        const bool diverted = fd == -1 && fx.err() == EMFILE;
        const auto caught =
            fx.mgr().metrics().counter("recovery.signals_caught").value();
        const auto retries =
            fx.mgr().metrics().counter("recovery.retries").value();
        const auto diversions =
            fx.mgr().metrics().counter("recovery.diversions").value();
        FIR_QUIESCE(fx);
        // Crash → retry → crash again → divert: two real SIGSEGVs total.
        std::_Exit(diverted && caught == 2 && retries == 1 && diversions == 1
                       ? 0
                       : 1);
      },
      ExitedWithCode(0), "");
}

TEST(CrashSignalDeathTest, RealFpeRecordsKindAndRecovers) {
  EXPECT_EXIT(
      {
        Fx fx(signal_config());
        FIR_ANCHOR(fx);
        const int fd = static_cast<int>(FIR_SOCKET(fx));
        if (fd >= 0) real_fpe();
        const bool diverted = fd == -1 && fx.err() == EMFILE;
        const bool kind_ok = last_signal_crash().kind == CrashKind::kFpe &&
                             last_signal_crash().signo == SIGFPE;
        FIR_QUIESCE(fx);
        std::_Exit(diverted && kind_ok ? 0 : 1);
      },
      ExitedWithCode(0), "");
}

TEST(CrashSignalDeathTest, TransientRealSegvIsMaskedByRetry) {
  EXPECT_EXIT(
      {
        Fx fx(signal_config());
        FIR_ANCHOR(fx);
        static int budget;
        budget = 1;
        const int fd = static_cast<int>(FIR_SOCKET(fx));
        if (fd >= 0 && budget > 0) {
          --budget;
          real_segv();
        }
        const auto retries =
            fx.mgr().metrics().counter("recovery.retries").value();
        FIR_QUIESCE(fx);
        std::_Exit(fd >= 0 && retries == 1 ? 0 : 1);
      },
      ExitedWithCode(0), "");
}

TEST(CrashSignalDeathTest, UnprotectedRealSegvDiesLikeVanilla) {
  EXPECT_EXIT(
      {
        Fx fx(signal_config());  // handlers installed, no transaction open
        real_segv();
      },
      KilledBySignal(SIGSEGV), "");
}

class InRecoveryHandler : public CrashHandler {
 public:
  [[noreturn]] void handle_crash(CrashKind) override { std::_Exit(9); }
  bool in_recovery() const override { return true; }
};

TEST(CrashSignalDeathTest, SyncDoubleFaultExitsWithDiagnostic) {
  EXPECT_EXIT(
      {
        InRecoveryHandler handler;
        set_crash_handler(&handler);
        raise_crash(CrashKind::kSegv);
      },
      ExitedWithCode(kDoubleFaultExitCode),
      "double fault \\(SIGSEGV\\).*sync channel; site=.*depth=");
}

TEST(CrashSignalDeathTest, SignalDoubleFaultExitsWithDiagnostic) {
  EXPECT_EXIT(
      {
        InRecoveryHandler handler;
        set_crash_handler(&handler);
        if (!install_signal_channel()) std::_Exit(2);
        real_segv();
      },
      ExitedWithCode(kDoubleFaultExitCode),
      "double fault \\(SIGSEGV\\).*signal channel; site=.*depth=");
}

TEST(CrashSignalDeathTest, CrashInCompensationEscalatesToDoubleFault) {
  EXPECT_EXIT(
      {
        Fx fx(signal_config());
        TxManager& mgr = fx.mgr();
        mgr.set_anchor(__builtin_frame_address(0));
        const SiteId site = mgr.register_site("socket", "crash_signal_test");
        Compensation comp;
        comp.fn = [](Env&, std::intptr_t, std::intptr_t, std::intptr_t,
                     const std::uint8_t*, std::size_t) { real_segv(); };
        mgr.pre_call();
        volatile std::intptr_t rv = 0;
        if (setjmp(*mgr.gate_buf()) == 0) {
          rv = 3;
          mgr.begin(site, rv, comp);
        } else {
          rv = mgr.resume();
        }
        (void)rv;
        // First episode retries; the second runs the compensation, which
        // faults while recovery is in flight — double fault, clean exit.
        real_segv();
        std::_Exit(3);  // unreachable
      },
      ExitedWithCode(kDoubleFaultExitCode), "double fault");
}

TEST(CrashSignalDeathTest, ConcurrentCompensationCrashEscalates) {
  EXPECT_EXIT(
      {
        Fx fx(signal_config());
        TxManager& mgr = fx.mgr();

        // A sibling thread parks inside an open, recoverable transaction.
        // Recovery scope is the faulting thread: the kernel fault below
        // must escalate to a double fault even though another thread's
        // transaction could, in principle, absorb a crash.
        std::atomic<bool> holder_open{false};
        std::thread holder([&mgr, &holder_open] {
          mgr.set_anchor(__builtin_frame_address(0));
          const SiteId site =
              mgr.register_site("socket", "crash_signal_test:holder");
          mgr.pre_call();
          volatile std::intptr_t rv = 0;
          if (setjmp(*mgr.gate_buf()) == 0) {
            rv = 3;
            mgr.begin(site, rv, Compensation{});
          } else {
            rv = mgr.resume();
          }
          (void)rv;
          holder_open.store(true);
          for (;;) asm volatile("" ::: "memory");  // parked mid-transaction
        });
        while (!holder_open.load()) std::this_thread::yield();

        mgr.set_anchor(__builtin_frame_address(0));
        const SiteId site =
            mgr.register_site("socket", "crash_signal_test:main");
        Compensation comp;
        comp.fn = [](Env&, std::intptr_t, std::intptr_t, std::intptr_t,
                     const std::uint8_t*, std::size_t) { real_segv(); };
        mgr.pre_call();
        volatile std::intptr_t rv = 0;
        if (setjmp(*mgr.gate_buf()) == 0) {
          rv = 3;
          mgr.begin(site, rv, comp);
        } else {
          rv = mgr.resume();
        }
        (void)rv;
        // First episode retries; the second runs the compensation, which
        // takes a real SIGSEGV while recovery is in flight on this thread.
        real_segv();
        std::_Exit(3);  // unreachable
      },
      ExitedWithCode(kDoubleFaultExitCode), "double fault");
}

TEST(CrashSignalDeathTest, WatchdogConvertsSpinIntoHangRecovery) {
  EXPECT_EXIT(
      {
        TxManagerConfig c = signal_config();
        c.tx_deadline_ms = 50;
        Fx fx(c);
        FIR_ANCHOR(fx);
        const int fd = static_cast<int>(FIR_SOCKET(fx));
        if (fd >= 0) {
          for (;;) asm volatile("" ::: "memory");  // hang inside the txn
        }
        const bool diverted = fd == -1 && fx.err() == EMFILE;
        const auto fires =
            fx.mgr().metrics().counter("recovery.watchdog_fires").value();
        bool hang_logged = false;
        for (const RecoveryEvent& e : fx.mgr().recovery_log())
          hang_logged |= e.kind == CrashKind::kHang;
        FIR_QUIESCE(fx);
        std::_Exit(diverted && fires == 2 && hang_logged ? 0 : 1);
      },
      ExitedWithCode(0), "");
}

TEST(CrashSignalTest, InstallIsRefCounted) {
  EXPECT_FALSE(signal_channel_installed());
  ASSERT_TRUE(install_signal_channel());
  ASSERT_TRUE(install_signal_channel());
  EXPECT_TRUE(signal_channel_installed());
  uninstall_signal_channel();
  EXPECT_TRUE(signal_channel_installed());
  uninstall_signal_channel();
  EXPECT_FALSE(signal_channel_installed());
}

TEST(CrashSignalTest, EnvEnablesChannelForManagerLifetime) {
  ::setenv("FIR_SIGNALS", "1", 1);
  {
    Fx fx;
    EXPECT_TRUE(fx.mgr().config().real_signals);
    EXPECT_TRUE(signal_channel_installed());
  }
  EXPECT_FALSE(signal_channel_installed());
  ::setenv("FIR_SIGNALS", "0", 1);
  EXPECT_FALSE(signal_channel_env_enabled());
  ::unsetenv("FIR_SIGNALS");
}

TEST(CrashSignalTest, StormBackstopSkipsRetriesAfterThreshold) {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  c.policy.storm_divert_threshold = 2;
  Fx fx(c);
  for (int round = 0; round < 4; ++round) {
    FIR_ANCHOR(fx);
    const int fd = static_cast<int>(FIR_SOCKET(fx));
    if (fd >= 0) raise_crash(CrashKind::kSegv);  // persistent, sync channel
    EXPECT_EQ(fd, -1) << "round " << round;
    EXPECT_EQ(fx.err(), EMFILE);
    FIR_QUIESCE(fx);
  }
  // Rounds 0-1 pay the retry and divert (site memory reaches the threshold
  // of 2); rounds 2-3 divert immediately.
  EXPECT_EQ(fx.mgr().metrics().counter("recovery.retries").value(), 2u);
  EXPECT_EQ(fx.mgr().metrics().counter("recovery.diversions").value(), 4u);
  EXPECT_EQ(fx.mgr().metrics().counter("recovery.storm_diverts").value(), 2u);
}

}  // namespace
}  // namespace fir
