// Per-thread crash transactions: concurrent worker threads over ONE
// TxManager. Each thread gets its own TxContext (gate buffer, stack
// snapshot, undo log, engines), so a crash on one thread rolls back and
// diverts only that thread while siblings' gated calls proceed untouched;
// the shared site table interns once per static site no matter how many
// threads race the first expansion; and the single-writer per-thread
// tallies aggregate into coherent process-wide totals. The death test
// pins down the double-fault rule under concurrency: a compensation
// crashing on one thread escalates even while another thread holds an
// open (perfectly recoverable) transaction — recovery scope is the
// faulting thread, never "any open transaction in the process".
#include <gtest/gtest.h>

#include <atomic>
#include <csetjmp>
#include <cstdint>
#include <thread>
#include <vector>

#include "interpose/fir.h"

namespace fir {
namespace {

using ::testing::ExitedWithCode;

TxManagerConfig stm_config() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;  // no HTM hop: one episode per crash
  return c;
}

TEST(TxThreadTest, ConcurrentCoalescedRunsStayIsolated) {
  // Checkpoint fast path under concurrency: every thread forms multi-call
  // runs against ONE manager while half of them crash mid-run. Run state
  // (run buffer, embedded reverts, coalesce_armed) is per-TxContext; the
  // only cross-thread write is the sticky GateState::no_coalesce CAS, which
  // this test hammers from every crashing thread at once. Run under the CI
  // TSan job, this is the data-race check for the coalescing path.
  constexpr int kThreads = 4;
  constexpr int kIterations = 100;
  constexpr std::uint32_t kOptReuseAddr = 0x1;
  Fx fx(stm_config());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fx, &failures, t] {
      const bool crashing = (t % 2) == 0;
      FIR_ANCHOR(fx);
      for (int i = 0; i < kIterations; ++i) {
        const int fd = static_cast<int>(FIR_SOCKET(fx));
        if (fd < 0) {
          failures.fetch_add(1);
          FIR_QUIESCE(fx);
          continue;
        }
        // Coalescible tail: setsockopt extends socket's transaction while
        // the sites stay quiescent; after the first mid-run crash the
        // crashing threads' sites are de-coalesced and run per-call.
        const int rs = static_cast<int>(FIR_SETSOCKOPT(fx, fd, kOptReuseAddr));
        if (crashing && rs == 0 && i % 2 == 0)
          raise_crash(CrashKind::kSegv);  // persistent: retry then divert
        if (static_cast<int>(FIR_SETSOCKOPT(fx, fd, kOptReuseAddr)) != 0 &&
            !crashing) {
          failures.fetch_add(1);
        }
        FIR_QUIESCE(fx);
      }
      fx.mgr().clear_anchor();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  obs::MetricsRegistry& reg = fx.mgr().metrics();
  EXPECT_EQ(reg.counter("recovery.double_faults").value(), 0u);
  EXPECT_EQ(reg.counter("recovery.fatal").value(), 0u);
  const auto samples = fx.mgr().metrics().snapshot();
  (void)samples;
  // The clean threads coalesced at least their first runs, and the sticky
  // de-coalesce was published exactly once per aborted site.
  EXPECT_GT(fx.mgr().transactions_coalesced(), 0u);
  EXPECT_LE(reg.counter("policy.decoalesced").value(), 2u);
}

TEST(TxThreadTest, ConcurrentCrashIsolation) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 150;
  Fx fx(stm_config());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fx, &failures, t] {
      // Even threads crash persistently on every iteration; odd threads run
      // the same gate crash-free. A recovery that leaked across threads
      // (shared jmp_buf, shared active-transaction slot, shared undo log)
      // would corrupt the clean threads' calls.
      const bool crashing = (t % 2) == 0;
      FIR_ANCHOR(fx);
      for (int i = 0; i < kIterations; ++i) {
        const int fd = static_cast<int>(FIR_SOCKET(fx));
        if (crashing) {
          if (fd >= 0) raise_crash(CrashKind::kSegv);  // persistent
          // Diverted: injected error return + errno, socket compensated away.
          if (fd != -1 || fx.err() != EMFILE) failures.fetch_add(1);
        } else {
          if (fd < 0) {
            failures.fetch_add(1);
          } else {
            FIR_CLOSE(fx, fd);  // deferred close flushes at the quiesce
          }
        }
        FIR_QUIESCE(fx);
      }
      fx.mgr().clear_anchor();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Each crashing iteration is crash -> rollback -> retry -> crash again ->
  // divert: exactly one retry and one diversion, on the faulting thread.
  const std::uint64_t crash_iterations =
      static_cast<std::uint64_t>(kThreads / 2) * kIterations;
  obs::MetricsRegistry& reg = fx.mgr().metrics();
  EXPECT_EQ(reg.counter("recovery.retries").value(), crash_iterations);
  EXPECT_EQ(reg.counter("recovery.diversions").value(), crash_iterations);
  EXPECT_EQ(reg.counter("recovery.double_faults").value(), 0u);
  EXPECT_EQ(reg.counter("recovery.fatal").value(), 0u);
  EXPECT_GE(fx.mgr().thread_count(), static_cast<std::size_t>(kThreads));
}

TEST(TxThreadTest, RacingGatesInternOneSite) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 50;
  Fx fx;  // default adaptive policy: shared GateState takes the updates
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fx, &failures] {
      FIR_ANCHOR(fx);
      for (int i = 0; i < kIterations; ++i) {
        // Every thread expands the SAME macro: one static SiteCache, one
        // (function, location) key racing through register_site.
        const int fd = static_cast<int>(FIR_SOCKET(fx));
        if (fd < 0) {
          failures.fetch_add(1);
        } else {
          FIR_CLOSE(fx, fd);
        }
        FIR_QUIESCE(fx);
      }
      fx.mgr().clear_anchor();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Racing first-callers may all have called register_site, but the
  // registry dedupes: exactly one "socket" site exists, and the shared
  // gate accounting absorbed every thread's executions.
  int socket_sites = 0;
  std::uint64_t socket_executions = 0;
  for (const Site& site : fx.mgr().sites().all()) {
    if (site.function == "socket") {
      ++socket_sites;
      socket_executions = site.gate.executions.load(std::memory_order_relaxed);
    }
  }
  EXPECT_EQ(socket_sites, 1);
  EXPECT_EQ(socket_executions,
            static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST(TxThreadTest, TalliesAggregateAcrossThreadContexts) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 100;
  Fx fx(stm_config());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fx, &failures] {
      FIR_ANCHOR(fx);
      for (int i = 0; i < kIterations; ++i) {
        const int fd = static_cast<int>(FIR_SOCKET(fx));
        if (fd < 0) {
          failures.fetch_add(1);
        } else {
          FIR_CLOSE(fx, fd);
        }
        FIR_QUIESCE(fx);
      }
      fx.mgr().clear_anchor();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Two transactions per iteration (socket + close), all STM under the
  // kStmOnly policy, spread over kThreads per-thread tallies; the
  // aggregation getters must see the exact total once the threads joined.
  const std::uint64_t expected_tx =
      static_cast<std::uint64_t>(kThreads) * kIterations * 2;
  EXPECT_EQ(fx.mgr().transactions_stm(), expected_tx);
  EXPECT_EQ(fx.mgr().transactions_htm(), 0u);
  EXPECT_EQ(fx.mgr().transactions_unprotected(), 0u);
  EXPECT_EQ(fx.mgr().thread_count(), static_cast<std::size_t>(kThreads));
}

TEST(TxThreadDeathTest, CompensationCrashWithSiblingTransactionEscalates) {
  EXPECT_EXIT(
      {
        Fx fx(stm_config());
        TxManager& mgr = fx.mgr();

        // Holder thread: opens a transaction through the raw gate protocol
        // and parks inside it. Its transaction is recoverable — but it is
        // not the faulting thread, so it must never be recovered INTO.
        std::atomic<bool> holder_open{false};
        std::thread holder([&mgr, &holder_open] {
          mgr.set_anchor(__builtin_frame_address(0));
          const SiteId site =
              mgr.register_site("socket", "tx_thread_test:holder");
          mgr.pre_call();
          volatile std::intptr_t rv = 0;
          if (setjmp(*mgr.gate_buf()) == 0) {
            rv = 3;
            mgr.begin(site, rv, Compensation{});
          } else {
            rv = mgr.resume();
          }
          (void)rv;
          holder_open.store(true);
          for (;;) asm volatile("" ::: "memory");  // parked mid-transaction
        });
        while (!holder_open.load()) std::this_thread::yield();

        // Main thread: a transaction whose compensation itself crashes.
        // First raise retries; the second runs the compensation, which
        // faults while recovery is in flight on THIS thread — double fault.
        // A process-global recovery scope would instead see the holder's
        // open transaction and try to absorb the crash.
        mgr.set_anchor(__builtin_frame_address(0));
        const SiteId site = mgr.register_site("socket", "tx_thread_test:main");
        Compensation comp;
        comp.fn = [](Env&, std::intptr_t, std::intptr_t, std::intptr_t,
                     const std::uint8_t*, std::size_t) {
          raise_crash(CrashKind::kSegv);
        };
        mgr.pre_call();
        volatile std::intptr_t rv = 0;
        if (setjmp(*mgr.gate_buf()) == 0) {
          rv = 3;
          mgr.begin(site, rv, comp);
        } else {
          rv = mgr.resume();
        }
        (void)rv;
        raise_crash(CrashKind::kSegv);
      },
      ExitedWithCode(kDoubleFaultExitCode), "double fault");
}

}  // namespace
}  // namespace fir
