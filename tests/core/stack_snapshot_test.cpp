#include <gtest/gtest.h>

#include <csetjmp>
#include <cstring>
#include <vector>

#include "core/stack_snapshot.h"

namespace fir {
namespace {

TEST(StackSnapshotTest, CaptureAndRestoreRegion) {
  std::vector<char> region(256, 'a');
  StackSnapshot snapshot;
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + region.size()));
  EXPECT_TRUE(snapshot.valid());
  EXPECT_EQ(snapshot.size_bytes(), 256u);
  std::memset(region.data(), 'z', region.size());
  snapshot.restore();
  EXPECT_EQ(region[0], 'a');
  EXPECT_EQ(region[255], 'a');
}

TEST(StackSnapshotTest, RejectsInvertedBounds) {
  char buf[16] = {};
  StackSnapshot snapshot;
  EXPECT_FALSE(snapshot.capture(buf + 16, buf));
  EXPECT_FALSE(snapshot.valid());
}

TEST(StackSnapshotTest, RejectsImplausiblyLargeRegion) {
  StackSnapshot snapshot;
  char* base = reinterpret_cast<char*>(0x1000);
  EXPECT_FALSE(
      snapshot.capture(base, base + StackSnapshot::kMaxBytes + 1));
}

TEST(StackSnapshotTest, InvalidateMakesRestoreNoOp) {
  std::vector<char> region(64, 'a');
  StackSnapshot snapshot;
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + region.size()));
  snapshot.invalidate();
  std::memset(region.data(), 'z', region.size());
  snapshot.restore();  // must not touch the region
  EXPECT_EQ(region[0], 'z');
}

TEST(StackSnapshotTest, RecaptureReplacesImage) {
  std::vector<char> region(64, '1');
  StackSnapshot snapshot;
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + 64));
  std::memset(region.data(), '2', 64);
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + 64));
  std::memset(region.data(), '3', 64);
  snapshot.restore();
  EXPECT_EQ(region[0], '2');
}

TEST(RecoveryStackTest, RunsFunctionOnDetachedStack) {
  static jmp_buf back;
  static char* observed_sp = nullptr;
  RecoveryStack recovery;
  char here;
  if (setjmp(back) == 0) {
    recovery.run(
        [](void*) {
          char marker;
          observed_sp = &marker;
          std::longjmp(back, 1);
        },
        nullptr);
  }
  // The recovery function ran on a different stack, far from this frame.
  const auto distance =
      observed_sp > &here ? observed_sp - &here : &here - observed_sp;
  EXPECT_GT(distance, 16 * 1024);
}

}  // namespace
}  // namespace fir
