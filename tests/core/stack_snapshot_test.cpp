#include <gtest/gtest.h>

#include <csetjmp>
#include <cstring>
#include <vector>

#include "core/stack_snapshot.h"

namespace fir {
namespace {

TEST(StackSnapshotTest, CaptureAndRestoreRegion) {
  std::vector<char> region(256, 'a');
  StackSnapshot snapshot;
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + region.size()));
  EXPECT_TRUE(snapshot.valid());
  EXPECT_EQ(snapshot.size_bytes(), 256u);
  std::memset(region.data(), 'z', region.size());
  snapshot.restore();
  EXPECT_EQ(region[0], 'a');
  EXPECT_EQ(region[255], 'a');
}

TEST(StackSnapshotTest, RejectsInvertedBounds) {
  char buf[16] = {};
  StackSnapshot snapshot;
  EXPECT_FALSE(snapshot.capture(buf + 16, buf));
  EXPECT_FALSE(snapshot.valid());
}

TEST(StackSnapshotTest, RejectsImplausiblyLargeRegion) {
  StackSnapshot snapshot;
  char* base = reinterpret_cast<char*>(0x1000);
  EXPECT_FALSE(
      snapshot.capture(base, base + StackSnapshot::kMaxBytes + 1));
}

TEST(StackSnapshotTest, InvalidateMakesRestoreNoOp) {
  std::vector<char> region(64, 'a');
  StackSnapshot snapshot;
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + region.size()));
  snapshot.invalidate();
  std::memset(region.data(), 'z', region.size());
  snapshot.restore();  // must not touch the region
  EXPECT_EQ(region[0], 'z');
}

TEST(StackSnapshotTest, RecaptureReplacesImage) {
  std::vector<char> region(64, '1');
  StackSnapshot snapshot;
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + 64));
  std::memset(region.data(), '2', 64);
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + 64));
  std::memset(region.data(), '3', 64);
  snapshot.restore();
  EXPECT_EQ(region[0], '2');
}

// --- incremental capture (checkpoint fast path) -----------------------------

TEST(StackSnapshotTest, SameExtentRecaptureCopiesOnlyTheDirtyPrefix) {
  // 8 blocks. Dirty only the lowest block (the "deep end" of a stack
  // region); the verified-clean suffix above it must be elided.
  constexpr std::size_t kSize = 8 * StackSnapshot::kBlockBytes;
  std::vector<char> region(kSize, 'a');
  StackSnapshot snapshot;
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + kSize));
  EXPECT_EQ(snapshot.bytes_copied(), kSize);
  EXPECT_EQ(snapshot.bytes_elided(), 0u);
  EXPECT_EQ(snapshot.captures_incremental(), 0u);

  std::memset(region.data(), 'b', StackSnapshot::kBlockBytes);
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + kSize));
  EXPECT_EQ(snapshot.captures_incremental(), 1u);
  EXPECT_EQ(snapshot.bytes_copied(), kSize + StackSnapshot::kBlockBytes);
  EXPECT_EQ(snapshot.bytes_elided(), kSize - StackSnapshot::kBlockBytes);

  // The incremental image is complete: restore reproduces the live bytes
  // of the SECOND capture everywhere, elided suffix included.
  std::memset(region.data(), 'z', kSize);
  snapshot.restore();
  EXPECT_EQ(region[0], 'b');
  EXPECT_EQ(region[StackSnapshot::kBlockBytes - 1], 'b');
  EXPECT_EQ(region[StackSnapshot::kBlockBytes], 'a');
  EXPECT_EQ(region[kSize - 1], 'a');
}

TEST(StackSnapshotTest, IncrementalSurvivesInvalidate) {
  // invalidate() (transaction commit) keeps the image, so the next capture
  // of the same extent is still incremental.
  constexpr std::size_t kSize = 4 * StackSnapshot::kBlockBytes;
  std::vector<char> region(kSize, 'a');
  StackSnapshot snapshot;
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + kSize));
  snapshot.invalidate();
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + kSize));
  EXPECT_EQ(snapshot.captures_incremental(), 1u);
  EXPECT_EQ(snapshot.bytes_elided(), kSize);  // nothing changed: all elided
}

TEST(StackSnapshotTest, MovedExtentFallsBackToFullCopy) {
  constexpr std::size_t kSize = 4 * StackSnapshot::kBlockBytes;
  std::vector<char> region(2 * kSize, 'a');
  StackSnapshot snapshot;
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + kSize));
  ASSERT_TRUE(snapshot.capture(region.data() + kSize,
                               region.data() + 2 * kSize));  // frame moved
  EXPECT_EQ(snapshot.captures_incremental(), 0u);
  EXPECT_EQ(snapshot.bytes_copied(), 2 * kSize);
}

TEST(StackSnapshotTest, BufferGrowsOnceAndIsReused) {
  std::vector<char> region(64 * 1024, 'a');
  StackSnapshot snapshot;
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + 256));
  const std::uint64_t first_reallocs = snapshot.reallocs();
  EXPECT_GE(first_reallocs, 1u);
  // Growing to a larger extent reallocates once more...
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + 32 * 1024));
  EXPECT_GT(snapshot.reallocs(), first_reallocs);
  const std::uint64_t grown_reallocs = snapshot.reallocs();
  const std::size_t grown_capacity = snapshot.footprint_bytes();
  // ...but smaller and repeated captures never allocate again (grow-only).
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + 128));
  ASSERT_TRUE(snapshot.capture(region.data(), region.data() + 32 * 1024));
  EXPECT_EQ(snapshot.reallocs(), grown_reallocs);
  EXPECT_EQ(snapshot.footprint_bytes(), grown_capacity);
}

TEST(RecoveryStackTest, RunsFunctionOnDetachedStack) {
  static jmp_buf back;
  static char* observed_sp = nullptr;
  RecoveryStack recovery;
  char here;
  if (setjmp(back) == 0) {
    recovery.run(
        [](void*) {
          char marker;
          observed_sp = &marker;
          std::longjmp(back, 1);
        },
        nullptr);
  }
  // The recovery function ran on a different stack, far from this frame.
  const auto distance =
      observed_sp > &here ? observed_sp - &here : &here - observed_sp;
  EXPECT_GT(distance, 16 * 1024);
}

}  // namespace
}  // namespace fir
