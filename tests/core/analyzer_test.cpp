#include <gtest/gtest.h>

#include "core/analyzer.h"

namespace fir {
namespace {

TEST(AnalyzerTest, EmptyRegistryYieldsZeroSurface) {
  SiteRegistry sites;
  const SurfaceReport report = analyze_surface(sites);
  EXPECT_EQ(report.unique_transactions, 0u);
  EXPECT_EQ(report.recoverable_fraction(), 0.0);
}

TEST(AnalyzerTest, CountsExecutedSitesOnly) {
  SiteRegistry sites;
  const SiteId a = sites.intern("socket", "x:1");      // recoverable
  const SiteId b = sites.intern("send", "x:2");        // irrecoverable
  const SiteId c = sites.intern("recv", "x:3");        // never executed
  const SiteId d = sites.intern("free", "x:4");        // embedded only
  sites[a].stats.transactions = 5;
  sites[b].stats.transactions = 3;
  sites[d].stats.embedded_calls = 7;
  (void)c;

  const SurfaceReport report = analyze_surface(sites);
  EXPECT_EQ(report.unique_transactions, 2u);
  EXPECT_EQ(report.irrecoverable_transactions, 1u);
  EXPECT_EQ(report.embedded_libcall_sites, 1u);
  EXPECT_DOUBLE_EQ(report.recoverable_fraction(), 0.5);
}

TEST(AnalyzerTest, SiteReportSortsByActivity) {
  SiteRegistry sites;
  const SiteId a = sites.intern("socket", "x:1");
  const SiteId b = sites.intern("recv", "x:2");
  sites[a].stats.transactions = 1;
  sites[b].stats.transactions = 10;
  const auto rows = site_report(sites);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].function, "recv");
  EXPECT_TRUE(rows[0].recoverable);
}

TEST(AnalyzerTest, UnmodeledFunctionIsIrrecoverable) {
  SiteRegistry sites;
  const SiteId a = sites.intern("exotic_call", "x:1");
  sites[a].stats.transactions = 1;
  const SurfaceReport report = analyze_surface(sites);
  EXPECT_EQ(report.irrecoverable_transactions, 1u);
}

TEST(AnalyzerTest, RegistryInternIsIdempotent) {
  SiteRegistry sites;
  const SiteId a = sites.intern("socket", "x:1");
  const SiteId b = sites.intern("socket", "x:1");
  const SiteId c = sites.intern("socket", "x:2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(sites.size(), 2u);
}

}  // namespace
}  // namespace fir
