// Whole-runtime recovery tests under HTM and adaptive modes: the
// HTM-abort -> STM-re-execution protocol, capacity-driven demotion, and
// crash handling inside hardware transactions.
#include <gtest/gtest.h>

#include <vector>

#include "interpose/fir.h"
#include "mem/tracked.h"

namespace fir {
namespace {

TxManagerConfig htm_config(PolicyKind kind = PolicyKind::kAdaptive) {
  TxManagerConfig config;
  config.policy.kind = kind;
  config.policy.abort_threshold = 0.01;
  config.policy.sample_size = 4;
  config.htm.interrupt_abort_per_store = 0.0;
  return config;
}

TEST(RecoveryTest, HtmTransactionCommitsNormally) {
  Fx fx(htm_config(PolicyKind::kNaiveHtm));
  FIR_ANCHOR(fx);
  tracked<int> v;
  v.init(1);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(fx.mgr().current_mode(), TxMode::kHtm);
  v = 2;
  FIR_QUIESCE(fx);
  EXPECT_EQ(static_cast<int>(v), 2);
  EXPECT_EQ(fx.mgr().htm_stats().committed, 1u);
}

TEST(RecoveryTest, CapacityOverflowFallsBackToStm) {
  TxManagerConfig config = htm_config(PolicyKind::kNaiveHtm);
  config.htm.max_write_lines = 4;
  Fx fx(config);
  FIR_ANCHOR(fx);

  std::vector<char> big(64 * kCacheLineBytes);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  // Large tracked memset: overflows the 4-line HTM write-set, aborts, and
  // re-executes under STM — which absorbs it.
  tx_memset(big.data(), 'x', big.size());
  EXPECT_EQ(fx.mgr().current_mode(), TxMode::kStm);
  FIR_QUIESCE(fx);
  EXPECT_EQ(big[0], 'x');
  EXPECT_EQ(big[big.size() - 1], 'x');
  EXPECT_GE(fx.mgr().htm_stats().aborted_capacity, 1u);
  EXPECT_EQ(fx.mgr().stm_stats().committed, 1u);
}

TEST(RecoveryTest, AdaptivePolicyDemotesCapacityHungrySite) {
  TxManagerConfig config = htm_config(PolicyKind::kAdaptive);
  config.htm.max_write_lines = 4;
  Fx fx(config);
  std::vector<char> big(64 * kCacheLineBytes);

  // The same site repeatedly overflows: after the demotion threshold, the
  // gate goes straight to STM and HTM aborts stop.
  for (int round = 0; round < 20; ++round) {
    FIR_ANCHOR(fx);
    const int fd = FIR_SOCKET(fx);
    ASSERT_GE(fd, 0);
    tx_memset(big.data(), static_cast<char>(round), big.size());
    FIR_QUIESCE(fx);
    fx.env().close(fd);
  }
  const auto aborts = fx.mgr().htm_stats().aborted_capacity;
  EXPECT_LE(aborts, 8u);  // demoted long before 20 rounds
  bool any_sticky = false;
  for (const Site& s : fx.mgr().sites().all())
    any_sticky |= s.gate.sticky_stm;
  EXPECT_TRUE(any_sticky);
}

TEST(RecoveryTest, CrashInsideHtmAbortsThenRecoversUnderStm) {
  Fx fx(htm_config(PolicyKind::kNaiveHtm));
  FIR_ANCHOR(fx);
  tracked<int> progress;
  progress.init(0);

  const int fd = FIR_SOCKET(fx);
  if (fd >= 0) {
    // First pass runs under HTM; STM re-executions pass through here too,
    // so no per-pass mode assertion is possible.
    progress += 1;
    raise_crash(CrashKind::kSegv);  // persistent
  }
  // Sequence: HTM explicit abort -> STM re-exec -> crash -> STM retry ->
  // crash -> divert.
  EXPECT_EQ(fd, -1);
  EXPECT_EQ(fx.err(), EMFILE);
  EXPECT_EQ(static_cast<int>(progress), 0);
  FIR_QUIESCE(fx);
  EXPECT_GE(fx.mgr().htm_stats().aborted_explicit, 1u);
  EXPECT_GE(fx.mgr().stm_stats().rolled_back, 2u);
}

TEST(RecoveryTest, TransientCrashInsideHtmSurvivesViaStmReexecution) {
  Fx fx(htm_config(PolicyKind::kNaiveHtm));
  FIR_ANCHOR(fx);
  static int budget;
  budget = 1;
  tracked<int> v;
  v.init(5);

  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  v = 6;
  if (budget > 0) {
    --budget;
    raise_crash(CrashKind::kSegv);
  }
  EXPECT_EQ(static_cast<int>(v), 6);
  EXPECT_GE(fd, 0);
  FIR_QUIESCE(fx);
}

TEST(RecoveryTest, HtmOnlyPolicyRunsUnprotectedAfterAbort) {
  TxManagerConfig config = htm_config(PolicyKind::kHtmOnly);
  config.htm.max_write_lines = 2;
  Fx fx(config);
  FIR_ANCHOR(fx);
  std::vector<char> big(32 * kCacheLineBytes);

  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  tx_memset(big.data(), 'y', big.size());  // overflow -> unprotected re-exec
  EXPECT_EQ(fx.mgr().current_mode(), TxMode::kNone);
  FIR_QUIESCE(fx);
  EXPECT_EQ(big[5], 'y');
}

TEST(RecoveryTest, InterruptAbortsAreAbsorbedTransparently) {
  TxManagerConfig config = htm_config(PolicyKind::kNaiveHtm);
  config.htm.interrupt_abort_per_store = 0.02;
  config.htm.seed = 7;
  Fx fx(config);
  tracked<int> sum;
  sum.init(0);

  for (int round = 0; round < 200; ++round) {
    FIR_ANCHOR(fx);
    const int fd = FIR_SOCKET(fx);
    ASSERT_GE(fd, 0);
    for (int i = 0; i < 10; ++i) sum += 1;
    FIR_QUIESCE(fx);
    fx.env().close(fd);
  }
  EXPECT_EQ(static_cast<int>(sum), 2000);
  EXPECT_GT(fx.mgr().htm_stats().aborted_interrupt, 0u);
}

TEST(RecoveryTest, ResetStatsClearsRuntimeCounters) {
  Fx fx(htm_config(PolicyKind::kNaiveHtm));
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  FIR_QUIESCE(fx);
  EXPECT_GT(fx.mgr().htm_stats().begun, 0u);
  fx.mgr().reset_stats();
  EXPECT_EQ(fx.mgr().htm_stats().begun, 0u);
  EXPECT_EQ(fx.mgr().transactions_htm(), 0u);
  for (const Site& s : fx.mgr().sites().all())
    EXPECT_EQ(s.stats.transactions, 0u);
}

TEST(RecoveryTest, InstrumentationBytesAreReported) {
  Fx fx(htm_config());
  EXPECT_GT(fx.mgr().instrumentation_bytes(), 0u);
}

}  // namespace
}  // namespace fir
