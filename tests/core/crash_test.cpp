#include <gtest/gtest.h>

#include <csignal>

#include "core/crash.h"

namespace fir {
namespace {

class RecordingHandler : public CrashHandler {
 public:
  [[noreturn]] void handle_crash(CrashKind kind) override {
    last_kind = kind;
    ++calls;
    throw FatalCrashError(kind, "recorded");
  }
  CrashKind last_kind = CrashKind::kSegv;
  int calls = 0;
};

TEST(CrashTest, NoHandlerThrowsFatal) {
  set_crash_handler(nullptr);
  EXPECT_THROW(raise_crash(CrashKind::kAbort), FatalCrashError);
}

TEST(CrashTest, HandlerReceivesKind) {
  RecordingHandler handler;
  CrashHandler* prev = set_crash_handler(&handler);
  EXPECT_THROW(raise_crash(CrashKind::kBus), FatalCrashError);
  EXPECT_EQ(handler.calls, 1);
  EXPECT_EQ(handler.last_kind, CrashKind::kBus);
  set_crash_handler(prev);
}

TEST(CrashTest, SetHandlerReturnsPrevious) {
  RecordingHandler a, b;
  CrashHandler* original = set_crash_handler(&a);
  EXPECT_EQ(set_crash_handler(&b), &a);
  EXPECT_EQ(crash_handler(), &b);
  set_crash_handler(original);
}

TEST(CrashTest, CheckPtrPassesNonNull) {
  set_crash_handler(nullptr);
  int x = 0;
  check_ptr(&x);  // no crash
  EXPECT_THROW(check_ptr(nullptr), FatalCrashError);
}

TEST(CrashTest, CheckBoundsGuardsIndices) {
  set_crash_handler(nullptr);
  check_bounds(4, 5);  // ok
  EXPECT_THROW(check_bounds(5, 5), FatalCrashError);
  EXPECT_THROW(check_bounds(100, 5), FatalCrashError);
}

TEST(CrashTest, KindNamesMapToSignals) {
  EXPECT_STREQ(crash_kind_name(CrashKind::kSegv), "SIGSEGV");
  EXPECT_STREQ(crash_kind_name(CrashKind::kAbort), "SIGABRT");
  EXPECT_STREQ(crash_kind_name(CrashKind::kIllegal), "SIGILL");
  EXPECT_STREQ(crash_kind_name(CrashKind::kBus), "SIGBUS");
  EXPECT_STREQ(crash_kind_name(CrashKind::kFpe), "SIGFPE");
  EXPECT_STREQ(crash_kind_name(CrashKind::kHang), "HANG");
}

TEST(CrashTest, KindSignalNumbersMatchPosix) {
  EXPECT_EQ(crash_kind_signo(CrashKind::kSegv), SIGSEGV);
  EXPECT_EQ(crash_kind_signo(CrashKind::kAbort), SIGABRT);
  EXPECT_EQ(crash_kind_signo(CrashKind::kIllegal), SIGILL);
  EXPECT_EQ(crash_kind_signo(CrashKind::kBus), SIGBUS);
  EXPECT_EQ(crash_kind_signo(CrashKind::kFpe), SIGFPE);
  EXPECT_EQ(crash_kind_signo(CrashKind::kHang), SIGALRM);
}

TEST(CrashTest, FatalCrashErrorCarriesKind) {
  const FatalCrashError err(CrashKind::kFpe, "divide by zero");
  EXPECT_EQ(err.kind(), CrashKind::kFpe);
  EXPECT_STREQ(err.what(), "divide by zero");
}

}  // namespace
}  // namespace fir
