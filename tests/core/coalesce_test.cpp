// Checkpoint fast path: crash-transaction coalescing. Covers run formation
// and accounting, the FIR_COALESCE/FIR_COALESCE_MAX knobs, crash-at-every-
// position rollback/replay semantics, divert identity after de-coalescing,
// deferred-effect flush timing, engine-level checkpoint reuse, and the
// oversize-span observability satellite. The whole file runs under both
// crash channels: `raise_crash` goes through the synchronous path by
// default and through the POSIX signal path when FIR_SIGNALS=1 (the CI
// signals job re-runs this binary with it set).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "core/stack_snapshot.h"
#include "core/tx_manager.h"
#include "interpose/fir.h"
#include "stm/stm.h"

namespace fir {
namespace {

constexpr std::uint32_t kOptReuseAddr = 0x1;

TxManagerConfig stm_config(std::uint32_t coalesce_max = 8) {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;  // no HTM hop: deterministic episodes
  c.coalesce_max = coalesce_max;
  c.obs.trace_enabled = true;
  return c;
}

std::uint64_t count_events(const Fx& fx, obs::EventKind kind) {
  std::uint64_t n = 0;
  for (const obs::TraceEvent& e : fx.mgr().obs().trace().snapshot())
    if (e.kind == kind) ++n;
  return n;
}

// Transient-fault model (see tx_manager_test.cpp): the budget lives outside
// the rollback domain, so a rolled-back crash stays consumed.
int g_crash_budget = 0;
void maybe_crash_transient() {
  if (g_crash_budget > 0) {
    --g_crash_budget;
    raise_crash(CrashKind::kSegv);
  }
}

TEST(CoalesceTest, QuiescentCallsShareOneTransaction) {
  Fx fx(stm_config());
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(FIR_SETSOCKOPT(fx, fd, kOptReuseAddr), 0);
  FIR_QUIESCE(fx);

  // One run: socket opened the checkpoint, three setsockopts rode it.
  EXPECT_EQ(fx.mgr().transactions_coalesced(), 3u);
  EXPECT_EQ(fx.mgr().coalesced_runs(), 1u);
  EXPECT_EQ(fx.mgr().transactions_stm(), 4u);  // per-call meaning kept
  EXPECT_EQ(count_events(fx, obs::EventKind::kTxCoalesce), 3u);

  // The engine checkpointed ONCE: one stm begin/commit, one filter epoch,
  // one undo log spanned the whole run.
  const StmStats s = fx.mgr().stm_stats();
  EXPECT_EQ(s.begun, 1u);
  EXPECT_EQ(s.committed, 1u);

  // Every call in the run still committed, site-wise.
  std::uint64_t commits = 0;
  for (const Site& site : fx.mgr().sites().all())
    commits += site.stats.commits;
  EXPECT_EQ(commits, 4u);
}

TEST(CoalesceTest, RunBudgetCapsExtensions) {
  Fx fx(stm_config(/*coalesce_max=*/2));
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(FIR_SETSOCKOPT(fx, fd, kOptReuseAddr), 0);
  FIR_QUIESCE(fx);

  // Runs of at most 2 calls: [socket, ss1] and [ss2, ss3].
  EXPECT_EQ(fx.mgr().transactions_coalesced(), 2u);
  EXPECT_EQ(fx.mgr().coalesced_runs(), 2u);
  const StmStats s = fx.mgr().stm_stats();
  EXPECT_EQ(s.begun, 2u);
}

TEST(CoalesceTest, KillSwitchRestoresPerCallTransactions) {
  ::setenv(kEnvCoalesce, "0", 1);
  ::setenv(kEnvCoalesceMax, "64", 1);  // kill-switch must win over this
  Fx fx(stm_config());
  ::unsetenv(kEnvCoalesce);
  ::unsetenv(kEnvCoalesceMax);

  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(FIR_SETSOCKOPT(fx, fd, kOptReuseAddr), 0);
  FIR_QUIESCE(fx);

  EXPECT_EQ(fx.mgr().transactions_coalesced(), 0u);
  EXPECT_EQ(fx.mgr().coalesced_runs(), 0u);
  EXPECT_EQ(fx.mgr().stm_stats().begun, 4u);  // seed: one checkpoint per call
  EXPECT_EQ(count_events(fx, obs::EventKind::kTxCoalesce), 0u);
}

TEST(CoalesceTest, EnvMaxBoundsTheRun) {
  ::setenv(kEnvCoalesceMax, "2", 1);
  Fx fx(stm_config());
  ::unsetenv(kEnvCoalesceMax);

  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(FIR_SETSOCKOPT(fx, fd, kOptReuseAddr), 0);
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.mgr().coalesced_runs(), 2u);
}

// Crash after the run's first extension: rollback replays to the run's
// FIRST call. The segment counters live outside the rollback domain, so
// they record true execution counts: everything from the opening call to
// the crash point runs twice, everything after it once.
TEST(CoalesceTest, CrashMidRunReplaysFromRunStart) {
  Fx fx(stm_config());
  FIR_ANCHOR(fx);
  // Statics: locals would sit inside the snapshot region and be rolled
  // back with the stack, hiding the replay we are counting.
  static int seg_after_open, seg_after_ext, seg_tail;
  seg_after_open = seg_after_ext = seg_tail = 0;
  g_crash_budget = 1;

  // One expansion = one site: both setsockopt calls must share identity so
  // the de-coalesce verdict from the first covers the second.
  const auto do_setsockopt = [&fx](int sock) {
    return static_cast<int>(FIR_SETSOCKOPT(fx, sock, kOptReuseAddr));
  };

  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  ++seg_after_open;
  const int rs1 = do_setsockopt(fd);  // coalesced
  ASSERT_EQ(rs1, 0);
  ++seg_after_ext;
  maybe_crash_transient();  // aborts the 2-call run
  const int rs2 = do_setsockopt(fd);
  ASSERT_EQ(rs2, 0);
  ++seg_tail;
  FIR_QUIESCE(fx);

  // Replay depth: rollback landed at the socket gate (run start), so both
  // pre-crash segments re-executed; the tail ran once.
  EXPECT_EQ(seg_after_open, 2);
  EXPECT_EQ(seg_after_ext, 2);
  EXPECT_EQ(seg_tail, 1);
  EXPECT_TRUE(fx.env().fd_valid(fd));  // retry preserved the opening effect
  EXPECT_EQ(fx.mgr().metrics().counter("recovery.retries").value(), 1u);

  // The abort de-coalesced every site in the run: the replayed setsockopt
  // (and the later one) ran under their own transactions.
  const auto samples = fx.mgr().metrics().snapshot();
  EXPECT_EQ(fx.mgr().metrics().counter("policy.decoalesced").value(), 2u);
  EXPECT_EQ(fx.mgr().transactions_coalesced(), 1u);  // only the first run
  for (const Site& site : fx.mgr().sites().all())
    EXPECT_TRUE(site.gate.no_coalesce.load(std::memory_order_relaxed))
        << site.function;
}

// Crash before any extension: a one-call transaction, exactly the seed
// path — no run, no de-coalescing, and later calls may still coalesce.
TEST(CoalesceTest, CrashBeforeExtensionLeavesCoalescingEnabled) {
  Fx fx(stm_config());
  FIR_ANCHOR(fx);
  g_crash_budget = 1;

  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  maybe_crash_transient();  // crash in the opening call's own window
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.mgr().metrics().counter("policy.decoalesced").value(), 0u);

  // socket crashed once, so IT no longer qualifies for coalescing
  // (allow_coalesce checks site crashes), but setsockopt never aborted and
  // still extends a fresh run.
  const int fd2 = FIR_SOCKET(fx);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(FIR_SETSOCKOPT(fx, fd2, kOptReuseAddr), 0);
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.mgr().transactions_coalesced(), 1u);
}

// Persistent crash inside a run. Round 1: the run aborts, retries from the
// run start and de-coalesces. Round 2: the replayed setsockopt runs in its
// OWN transaction, crashes through its retry budget, and the divert
// therefore targets setsockopt — the same site the seed would divert, with
// its catalog error — while the opening socket's effect survives.
TEST(CoalesceTest, PersistentCrashDivertsTheFaultingCallAfterDecoalesce) {
  Fx fx(stm_config());
  FIR_ANCHOR(fx);
  g_crash_budget = 100;  // persistent

  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  const int rs = FIR_SETSOCKOPT(fx, fd, kOptReuseAddr);
  if (rs == 0) maybe_crash_transient();  // stop once the error is injected
  g_crash_budget = 0;

  EXPECT_EQ(rs, -1);          // setsockopt's injected error...
  EXPECT_EQ(fx.err(), EINVAL);  // ...and errno, per the catalog
  EXPECT_TRUE(fx.env().fd_valid(fd));  // the opener was NOT compensated away
  FIR_QUIESCE(fx);

  std::uint64_t socket_div = 0, ss_div = 0;
  for (const Site& site : fx.mgr().sites().all()) {
    if (site.function == "socket") socket_div = site.stats.diversions;
    if (site.function == "setsockopt") ss_div = site.stats.diversions;
  }
  EXPECT_EQ(socket_div, 0u);
  EXPECT_EQ(ss_div, 1u);
}

// Deferred effects must flush when they always did: at the next gate. A
// coalesced close parks its real close in the run's deferred list, and the
// pending deferred op bars further extension, so the following call commits
// the run and applies it.
TEST(CoalesceTest, DeferredCloseStillFlushesAtTheNextGate) {
  Fx fx(stm_config());
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  const int keeper = FIR_SOCKET(fx);  // coalesced: run = [socket, socket]
  ASSERT_GE(keeper, 0);
  ASSERT_EQ(FIR_CLOSE(fx, fd), 0);     // coalesced; the real close is parked
  EXPECT_TRUE(fx.env().fd_valid(fd));  // deferred: not yet real
  // The pending deferred op bars extension, so the next gate commits the run
  // and applies the close. Probe with setsockopt on the surviving socket —
  // a FIR_SOCKET here would re-allocate the freed descriptor (alloc_fd is
  // lowest-free, POSIX-style) and mask the flush.
  ASSERT_EQ(FIR_SETSOCKOPT(fx, keeper, kOptReuseAddr), 0);
  EXPECT_FALSE(fx.env().fd_valid(fd));
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.mgr().transactions_coalesced(), 2u);
  EXPECT_EQ(fx.mgr().coalesced_runs(), 1u);
}

// Replay-unsafe calls (accept: its revert closes a connection the peer can
// see) must never be coalesced INTO a run, though they may open one.
TEST(CoalesceTest, ReplayUnsafeCallsDoNotExtendRuns) {
  const LibFunctionSpec* accept_spec = LibraryCatalog::instance().find("accept");
  ASSERT_NE(accept_spec, nullptr);
  EXPECT_TRUE(accept_spec->replay_unsafe);
  const LibFunctionSpec* send_spec = LibraryCatalog::instance().find("send");
  ASSERT_NE(send_spec, nullptr);
  EXPECT_EQ(send_spec->recoverability, Recoverability::kIrrecoverable);
}

// Engine-level view of the fast path: one filter epoch per transaction, so
// an un-coalesced pair of calls bumps the epoch twice while a coalesced run
// holds it (QuiescentCallsShareOneTransaction proves the run does exactly
// one stm begin).
TEST(CoalesceTest, FilterEpochAdvancesOncePerTransaction) {
  StmContext stm;
  stm.begin();
  const std::uint16_t e1 = stm.filter_epoch();
  int x = 0;
  stm.record_store(&x, sizeof(x));
  stm.commit();
  stm.begin();
  EXPECT_EQ(stm.filter_epoch(), static_cast<std::uint16_t>(e1 + 1));
  stm.commit();
}

// Oversize satellite: a [sp, anchor) span beyond StackSnapshot::kMaxBytes
// runs the call unprotected — that shrinking of the recovery surface must
// be observable, not a silent log line.
TEST(CoalesceTest, OversizeSpanEmitsEventAndCounter) {
  Fx fx(stm_config());
  const char* frame =
      static_cast<const char*>(__builtin_frame_address(0));
  fx.mgr().set_anchor(frame + StackSnapshot::kMaxBytes + 16384);

  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);  // the call itself still executes
  EXPECT_EQ(fx.mgr().current_mode(), TxMode::kNone);
  FIR_QUIESCE(fx);

  const auto samples = fx.mgr().metrics().snapshot();
  (void)samples;
  EXPECT_EQ(fx.mgr().metrics().counter("tx.unprotected_oversize").value(),
            1u);
  bool saw_event = false;
  for (const obs::TraceEvent& e : fx.mgr().obs().trace().snapshot()) {
    if (e.kind == obs::EventKind::kSnapshotOversize) {
      saw_event = true;
      EXPECT_GT(e.a0, static_cast<std::int64_t>(StackSnapshot::kMaxBytes));
    }
  }
  EXPECT_TRUE(saw_event);
  fx.mgr().clear_anchor();
}

// FIR_COALESCE=0 bit-for-bit seed parity on a full recovery episode:
// transient crash then persistent divert, with the exact seed counters.
TEST(CoalesceTest, KillSwitchSeedParityOnRecovery) {
  ::setenv(kEnvCoalesce, "0", 1);
  Fx fx(stm_config());
  ::unsetenv(kEnvCoalesce);
  FIR_ANCHOR(fx);

  const int fd = FIR_SOCKET(fx);
  if (fd >= 0) raise_crash(CrashKind::kSegv);  // persistent: retry, divert
  EXPECT_EQ(fd, -1);
  EXPECT_EQ(fx.err(), EMFILE);
  FIR_QUIESCE(fx);

  obs::MetricsRegistry& reg = fx.mgr().metrics();
  EXPECT_EQ(reg.counter("recovery.retries").value(), 1u);
  EXPECT_EQ(reg.counter("recovery.diversions").value(), 1u);
  EXPECT_EQ(reg.counter("policy.decoalesced").value(), 0u);
  EXPECT_EQ(fx.mgr().transactions_coalesced(), 0u);
}

}  // namespace
}  // namespace fir
