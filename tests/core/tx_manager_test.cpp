// TxManager gate-protocol tests: begin/commit, tracked rollback, retry and
// diversion semantics, embedded calls, deferred effects.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/tx_manager.h"
#include "interpose/fir.h"
#include "mem/tracked.h"

namespace fir {
namespace {

TxManagerConfig stm_only_config() {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kStmOnly;
  return config;
}

// Transient-fault model: crashes the first `g_crash_budget` times it is
// reached, then stops. The budget must live OUTSIDE the rollback domain
// (not on the protected stack): a transient fault is an external event, and
// state rollback must not resurrect it.
int g_crash_budget = 0;
void maybe_crash_transient() {
  if (g_crash_budget > 0) {
    --g_crash_budget;
    raise_crash(CrashKind::kSegv);
  }
}

TEST(TxManagerTest, GateCommitsPreviousTransactionAtNextCall) {
  Fx fx(stm_only_config());
  FIR_ANCHOR(fx);
  const int a = FIR_SOCKET(fx);
  ASSERT_GE(a, 0);
  EXPECT_TRUE(fx.mgr().in_transaction());
  const int b = FIR_SOCKET(fx);
  ASSERT_GE(b, 0);
  FIR_QUIESCE(fx);
  EXPECT_FALSE(fx.mgr().in_transaction());
  std::uint64_t commits = 0;
  for (const Site& s : fx.mgr().sites().all()) commits += s.stats.commits;
  EXPECT_EQ(commits, 2u);
}

TEST(TxManagerTest, TransientCrashRollsBackTrackedStateAndRetries) {
  Fx fx(stm_only_config());
  FIR_ANCHOR(fx);
  tracked<int> value;
  value.init(10);
  g_crash_budget = 1;

  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  value = 20;                // tracked store inside the transaction
  maybe_crash_transient();   // first pass crashes; retry re-executes
  EXPECT_EQ(static_cast<int>(value), 20);
  FIR_QUIESCE(fx);

  std::uint64_t retries = 0, diversions = 0;
  for (const Site& s : fx.mgr().sites().all()) {
    retries += s.stats.retries;
    diversions += s.stats.diversions;
  }
  EXPECT_EQ(retries, 1u);
  EXPECT_EQ(diversions, 0u);
  EXPECT_TRUE(fx.env().fd_valid(fd));  // call effect survives a retry
}

TEST(TxManagerTest, PersistentCrashDivertsWithInjectedError) {
  Fx fx(stm_only_config());
  FIR_ANCHOR(fx);
  tracked<int> counter;
  counter.init(0);

  const int fd = FIR_SOCKET(fx);
  if (fd >= 0) {
    counter += 1;
    raise_crash(CrashKind::kSegv);  // fires again after retry => divert
  }
  EXPECT_EQ(fd, -1);
  EXPECT_EQ(fx.err(), EMFILE);
  EXPECT_EQ(static_cast<int>(counter), 0);
  EXPECT_EQ(fx.env().open_fd_count(), 0u);  // compensation closed the fd
  FIR_QUIESCE(fx);

  std::uint64_t diversions = 0;
  for (const Site& s : fx.mgr().sites().all())
    diversions += s.stats.diversions;
  EXPECT_EQ(diversions, 1u);
}

TEST(TxManagerTest, CrashInDivertedHandlerIsFatal) {
  Fx fx(stm_only_config());
  FIR_ANCHOR(fx);
  bool handler_ran = false;
  EXPECT_THROW(
      {
        const int fd = FIR_SOCKET(fx);
        if (fd >= 0) raise_crash(CrashKind::kSegv);
        handler_ran = true;
        raise_crash(CrashKind::kAbort);  // no handler for the handler (VII)
      },
      FatalCrashError);
  EXPECT_TRUE(handler_ran);
  EXPECT_FALSE(fx.mgr().in_transaction());
}

TEST(TxManagerTest, CrashOutsideAnyTransactionIsFatal) {
  Fx fx(stm_only_config());
  EXPECT_THROW(raise_crash(CrashKind::kSegv), FatalCrashError);
}

TEST(TxManagerTest, UnprotectedConfigNeverOpensRecordingTransactions) {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kUnprotected;
  Fx fx(config);
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(fx.mgr().current_mode(), TxMode::kNone);
  EXPECT_EQ(fx.mgr().transactions_stm(), 0u);
  EXPECT_EQ(fx.mgr().transactions_htm(), 0u);
  FIR_QUIESCE(fx);
}

TEST(TxManagerTest, DisabledManagerStillPerformsCalls) {
  TxManagerConfig config;
  config.enabled = false;
  Fx fx(config);
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  EXPECT_GE(fd, 0);
  FIR_QUIESCE(fx);
}

TEST(TxManagerTest, NoAnchorMeansUnprotectedInitPhase) {
  Fx fx(stm_only_config());
  const int fd = FIR_SOCKET(fx);  // init-phase call, no anchor set
  ASSERT_GE(fd, 0);
  EXPECT_EQ(fx.mgr().current_mode(), TxMode::kNone);
  FIR_QUIESCE(fx);
}

TEST(TxManagerTest, DeferredCloseHappensAtCommitNotBefore) {
  Fx fx(stm_only_config());
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  const int rc = FIR_CLOSE(fx, fd);
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(fx.env().fd_valid(fd));  // deferred until commit
  FIR_QUIESCE(fx);
  EXPECT_FALSE(fx.env().fd_valid(fd));
}

TEST(TxManagerTest, CloseOfBadFdReportsEbadf) {
  Fx fx(stm_only_config());
  FIR_ANCHOR(fx);
  const int rc = FIR_CLOSE(fx, 77);
  EXPECT_EQ(rc, -1);
  EXPECT_EQ(fx.err(), EBADF);
  FIR_QUIESCE(fx);
}

TEST(TxManagerTest, EmbeddedFreeIsDroppedOnRollbackAndReissued) {
  Fx fx(stm_only_config());
  FIR_ANCHOR(fx);
  g_crash_budget = 1;

  void* block = FIR_MALLOC(fx, 64);
  ASSERT_NE(block, nullptr);
  FIR_FREE(fx, block);      // embedded deferred free
  maybe_crash_transient();  // rollback drops it; re-execution re-frees
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.env().stats().heap_frees, 1u);
  EXPECT_EQ(fx.env().stats().heap_bytes, 0u);
}

TEST(TxManagerTest, MallocDivertReturnsNullAndFreesBlock) {
  Fx fx(stm_only_config());
  FIR_ANCHOR(fx);
  void* block = FIR_MALLOC(fx, 128);
  if (block != nullptr) raise_crash(CrashKind::kSegv);  // persistent
  EXPECT_EQ(block, nullptr);
  EXPECT_EQ(fx.err(), ENOMEM);
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.env().stats().heap_bytes, 0u);  // compensation freed it
}

TEST(TxManagerTest, RecvDivertRestoresBufferAndStream) {
  Fx fx(stm_only_config());

  const int ls = fx.env().socket();
  ASSERT_EQ(fx.env().bind(ls, 9000), 0);
  ASSERT_EQ(fx.env().listen(ls, 4), 0);
  const int client = fx.env().connect_to(9000);
  ASSERT_GE(client, 0);
  const int conn = fx.env().accept(ls);
  ASSERT_GE(conn, 0);
  ASSERT_EQ(fx.env().send(client, "hello", 5), 5);

  FIR_ANCHOR(fx);
  char buf[16];
  std::memset(buf, 'x', sizeof(buf));
  const ssize_t r = FIR_RECV(fx, conn, buf, sizeof(buf));
  if (r == 5) raise_crash(CrashKind::kSegv);  // persistent crash after recv
  EXPECT_EQ(r, -1);
  EXPECT_EQ(fx.err(), ECONNRESET);
  EXPECT_EQ(buf[0], 'x');  // buffer restored
  FIR_QUIESCE(fx);

  char again[16];
  EXPECT_EQ(fx.env().recv(conn, again, sizeof(again)), 5);
  EXPECT_EQ(std::string_view(again, 5), "hello");  // stream un-consumed
}

TEST(TxManagerTest, SendSiteCannotDivertAndEndsFatal) {
  Fx fx(stm_only_config());
  const int ls = fx.env().socket();
  ASSERT_EQ(fx.env().bind(ls, 9001), 0);
  ASSERT_EQ(fx.env().listen(ls, 4), 0);
  const int client = fx.env().connect_to(9001);
  const int conn = fx.env().accept(ls);
  ASSERT_GE(conn, 0);
  (void)client;

  FIR_ANCHOR(fx);
  EXPECT_THROW(
      {
        const ssize_t w = FIR_SEND(fx, conn, "data", 4);
        if (w == 4) raise_crash(CrashKind::kSegv);  // persistent
      },
      FatalCrashError);
  std::uint64_t retries = 0, fatal = 0;
  for (const Site& s : fx.mgr().sites().all()) {
    retries += s.stats.retries;
    fatal += s.stats.fatal;
  }
  EXPECT_EQ(retries, 1u);
  EXPECT_EQ(fatal, 1u);
}

TEST(TxManagerTest, LseekDivertRestoresOffset) {
  Fx fx(stm_only_config());
  fx.env().vfs().put_file("/f.txt", "0123456789");
  const int fd = fx.env().open("/f.txt", kRdOnly);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(fx.env().lseek(fd, 3, kSeekSet), 3);

  FIR_ANCHOR(fx);
  const std::int64_t pos = FIR_LSEEK(fx, fd, 8, kSeekSet);
  if (pos == 8) raise_crash(CrashKind::kSegv);  // persistent
  EXPECT_EQ(pos, -1);
  EXPECT_EQ(fx.err(), EINVAL);
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.env().file_offset(fd), 3);  // compensation seeked back
}

TEST(TxManagerTest, RecoveryLatencyIsRecorded) {
  Fx fx(stm_only_config());
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  if (fd >= 0) raise_crash(CrashKind::kSegv);
  FIR_QUIESCE(fx);
  // One retry + one divert = two recovery episodes.
  EXPECT_EQ(fx.mgr().recovery_latency().count(), 2u);
  ASSERT_EQ(fx.mgr().recovery_log().size(), 2u);
  EXPECT_EQ(fx.mgr().recovery_log()[0].action, RecoveryEvent::Action::kRetry);
  EXPECT_EQ(fx.mgr().recovery_log()[1].action,
            RecoveryEvent::Action::kDivert);
  EXPECT_LT(fx.mgr().recovery_log()[1].latency_seconds, 1.0);
}

TEST(TxManagerTest, RecoveryLogIsBoundedAndDropsAreCounted) {
  TxManagerConfig config = stm_only_config();
  config.recovery_log_cap = 3;
  Fx fx(config);
  for (int round = 0; round < 3; ++round) {
    FIR_ANCHOR(fx);
    const int fd = static_cast<int>(FIR_SOCKET(fx));
    if (fd >= 0) raise_crash(CrashKind::kSegv);  // persistent
    EXPECT_EQ(fd, -1);
    FIR_QUIESCE(fx);
  }
  // 3 rounds × (1 retry + 1 divert) = 6 episodes; the cap keeps the first 3.
  EXPECT_EQ(fx.mgr().recovery_log().size(), 3u);
  EXPECT_EQ(fx.mgr().metrics().counter("recovery.log_dropped").value(), 3u);
  // reset_stats clears the log without giving back the reservation.
  fx.mgr().reset_stats();
  EXPECT_EQ(fx.mgr().recovery_log().size(), 0u);
  EXPECT_GE(fx.mgr().recovery_log().capacity(), 3u);
}

TEST(TxManagerTest, EnvironmentOverridesCrashChannelKnobs) {
  // The suite may itself run under FIR_SIGNALS=1 (the CI signal-channel
  // job); scrub it so the no-FIR_SIGNALS assertion below holds either way.
  const char* ambient_signals = std::getenv(kEnvSignals);
  const std::string saved_signals =
      ambient_signals != nullptr ? ambient_signals : "";
  ::unsetenv(kEnvSignals);
  ::setenv(kEnvTxDeadlineMs, "250", 1);
  ::setenv(kEnvRecoveryLogCap, "7", 1);
  ::setenv(kEnvStormThreshold, "5", 1);
  {
    Fx fx;
    EXPECT_EQ(fx.mgr().config().tx_deadline_ms, 250u);
    EXPECT_EQ(fx.mgr().config().recovery_log_cap, 7u);
    EXPECT_EQ(fx.mgr().config().policy.storm_divert_threshold, 5u);
    // No FIR_SIGNALS: the deadline alone must not arm the real channel.
    EXPECT_FALSE(fx.mgr().config().real_signals);
  }
  ::unsetenv(kEnvTxDeadlineMs);
  ::unsetenv(kEnvRecoveryLogCap);
  ::unsetenv(kEnvStormThreshold);
  if (ambient_signals != nullptr)
    ::setenv(kEnvSignals, saved_signals.c_str(), 1);
}

TEST(TxManagerTest, GateSurvivesCrashAfterGateFrameReturned) {
  // The function holding the gate returns before the crash: the stack
  // snapshot must restore that frame so the longjmp lands safely.
  Fx fx(stm_only_config());
  FIR_ANCHOR(fx);
  struct Helper {
    static int open_socket(Fx& fx_ref) { return FIR_SOCKET(fx_ref); }
  };
  const int fd = Helper::open_socket(fx);      // gate frame dies here
  if (fd >= 0) raise_crash(CrashKind::kSegv);  // crash in caller frame
  EXPECT_EQ(fd, -1);
  EXPECT_EQ(fx.err(), EMFILE);
  FIR_QUIESCE(fx);
}

}  // namespace
}  // namespace fir
