// Adaptive-policy decision logic (§IV-C).
#include <gtest/gtest.h>

#include "core/policy.h"

namespace fir {
namespace {

Site make_site(const char* function = "malloc") {
  Site site;
  site.id = 0;
  site.function = function;
  site.spec = LibraryCatalog::instance().find(function);
  return site;
}

TEST(PolicyTest, StmOnlyAlwaysStm) {
  PolicyConfig config;
  config.kind = PolicyKind::kStmOnly;
  AdaptivePolicy policy(config);
  Site site = make_site();
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(policy.choose_mode(site), TxMode::kStm);
}

TEST(PolicyTest, UnprotectedAlwaysNone) {
  PolicyConfig config;
  config.kind = PolicyKind::kUnprotected;
  AdaptivePolicy policy(config);
  Site site = make_site();
  EXPECT_EQ(policy.choose_mode(site), TxMode::kNone);
}

TEST(PolicyTest, NaiveHtmNeverDemotes) {
  PolicyConfig config;
  config.kind = PolicyKind::kNaiveHtm;
  AdaptivePolicy policy(config);
  Site site = make_site();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.choose_mode(site), TxMode::kHtm);
    EXPECT_EQ(policy.on_htm_abort(site), TxMode::kStm);
  }
  EXPECT_FALSE(site.gate.sticky_stm);
}

TEST(PolicyTest, HtmOnlyFallsBackUnprotected) {
  PolicyConfig config;
  config.kind = PolicyKind::kHtmOnly;
  AdaptivePolicy policy(config);
  Site site = make_site();
  EXPECT_EQ(policy.choose_mode(site), TxMode::kHtm);
  EXPECT_EQ(policy.on_htm_abort(site), TxMode::kNone);
}

TEST(PolicyTest, ManualListForcesStm) {
  PolicyConfig config;
  config.kind = PolicyKind::kManual;
  config.manual_stm_functions = {"malloc", "posix_memalign", "fcntl64"};
  AdaptivePolicy policy(config);
  Site marked = make_site("malloc");
  Site unmarked = make_site("setsockopt");
  EXPECT_EQ(policy.choose_mode(marked), TxMode::kStm);
  EXPECT_EQ(policy.choose_mode(unmarked), TxMode::kHtm);
}

TEST(PolicyTest, AdaptiveDemotesAboveThreshold) {
  PolicyConfig config;
  config.kind = PolicyKind::kAdaptive;
  config.abort_threshold = 0.01;
  config.sample_size = 4;
  AdaptivePolicy policy(config);
  Site site = make_site();
  // Abort on every execution: ratio 100% >> 1% — demoted at the first
  // sample-size boundary.
  int htm_attempts = 0;
  for (int i = 0; i < 20; ++i) {
    const TxMode mode = policy.choose_mode(site);
    if (mode == TxMode::kHtm) {
      ++htm_attempts;
      policy.on_htm_abort(site);
    }
  }
  EXPECT_TRUE(site.gate.sticky_stm);
  EXPECT_LE(htm_attempts, 4);
  // Once demoted, stays STM.
  EXPECT_EQ(policy.choose_mode(site), TxMode::kStm);
}

TEST(PolicyTest, AdaptiveToleratesRareAborts) {
  PolicyConfig config;
  config.kind = PolicyKind::kAdaptive;
  config.abort_threshold = 0.10;  // 10%
  config.sample_size = 16;
  AdaptivePolicy policy(config);
  Site site = make_site();
  // 1 abort in 100 executions; even at the first check (16 executions) the
  // ratio is 6.25% < 10% — never demoted.
  for (int i = 0; i < 100; ++i) {
    const TxMode mode = policy.choose_mode(site);
    ASSERT_EQ(mode, TxMode::kHtm) << "iteration " << i;
    if (i == 0) policy.on_htm_abort(site);
  }
  EXPECT_FALSE(site.gate.sticky_stm);
}

// Threshold sweep: any threshold below the actual abort ratio demotes, any
// threshold above does not (Fig. 6's parameter space).
struct SweepCase {
  double abort_ratio;
  double threshold;
  bool expect_demotion;
};

class PolicySweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PolicySweepTest, DemotionMatchesRatioVsThreshold) {
  const auto& c = GetParam();
  PolicyConfig config;
  config.kind = PolicyKind::kAdaptive;
  config.abort_threshold = c.threshold;
  config.sample_size = 8;
  AdaptivePolicy policy(config);
  Site site = make_site();
  const int executions = 800;
  const int period = static_cast<int>(1.0 / c.abort_ratio);
  for (int i = 0; i < executions && !site.gate.sticky_stm; ++i) {
    const TxMode mode = policy.choose_mode(site);
    if (mode == TxMode::kHtm && i % period == 0) policy.on_htm_abort(site);
  }
  EXPECT_EQ(site.gate.sticky_stm, c.expect_demotion)
      << "ratio=" << c.abort_ratio << " threshold=" << c.threshold;
}

INSTANTIATE_TEST_SUITE_P(
    RatioVsThreshold, PolicySweepTest,
    ::testing::Values(SweepCase{0.5, 0.01, true},
                      SweepCase{0.5, 0.25, true},
                      SweepCase{0.125, 0.01, true},
                      SweepCase{0.125, 0.32, false},
                      SweepCase{0.0625, 0.01, true},
                      SweepCase{0.0625, 0.64, false}));

TEST(PolicyTest, KindNames) {
  EXPECT_STREQ(policy_kind_name(PolicyKind::kAdaptive), "adaptive");
  EXPECT_STREQ(policy_kind_name(PolicyKind::kStmOnly), "stm-only");
}

TEST(PolicyTest, StormBackstopTripsAtThreshold) {
  PolicyConfig config;
  config.storm_divert_threshold = 2;
  AdaptivePolicy policy(config);
  Site site = make_site();
  EXPECT_FALSE(policy.storm_skip_retry(site));
  policy.on_diversion(site);
  EXPECT_FALSE(policy.storm_skip_retry(site));
  policy.on_diversion(site);
  EXPECT_TRUE(policy.storm_skip_retry(site));
  EXPECT_EQ(site.gate.diversions, 2u);
}

TEST(PolicyTest, StormBackstopDisabledByDefault) {
  AdaptivePolicy policy;
  Site site = make_site();
  for (int i = 0; i < 100; ++i) policy.on_diversion(site);
  EXPECT_FALSE(policy.storm_skip_retry(site));  // threshold 0 = off
}

}  // namespace
}  // namespace fir
