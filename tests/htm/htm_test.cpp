// Simulated-TSX model tests: capacity geometry, abort/restore semantics,
// probabilistic async aborts, line-granular cost model.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/cacheline.h"
#include "htm/htm.h"

namespace fir {
namespace {

HtmConfig quiet_config() {
  HtmConfig c;
  c.interrupt_abort_per_store = 0.0;
  c.conflict_abort_per_store = 0.0;
  return c;
}

TEST(HtmTest, CommitKeepsStores) {
  HtmContext htm(quiet_config());
  int x = 1;
  htm.begin();
  ASSERT_TRUE(htm.record_store(&x, sizeof(x)));
  x = 2;
  htm.commit();
  EXPECT_EQ(x, 2);
  EXPECT_EQ(htm.stats().committed, 1u);
}

TEST(HtmTest, AbortRestoresWholeDirtyLines) {
  HtmContext htm(quiet_config());
  alignas(kCacheLineBytes) char line[kCacheLineBytes];
  std::memset(line, 'a', sizeof(line));
  htm.begin();
  ASSERT_TRUE(htm.record_store(line + 5, 4));
  std::memset(line + 5, 'z', 4);
  line[60] = 'q';  // same line, modified without an own record
  htm.abort(HtmAbortCode::kExplicit);
  // Cache-discard semantics: the whole line reverts.
  EXPECT_EQ(line[5], 'a');
  EXPECT_EQ(line[60], 'a');
  EXPECT_EQ(htm.stats().aborted_explicit, 1u);
}

TEST(HtmTest, RepeatedStoresToSameLineCostOneEntry) {
  HtmContext htm(quiet_config());
  alignas(kCacheLineBytes) std::uint64_t word = 0;
  htm.begin();
  for (int i = 0; i < 1000; ++i)
    ASSERT_TRUE(htm.record_store(&word, sizeof(word)));
  EXPECT_EQ(htm.write_set_lines(), 1u);
  htm.commit();
}

TEST(HtmTest, CapacityAbortOnTotalLines) {
  HtmConfig config = quiet_config();
  config.max_write_lines = 8;
  config.max_lines_per_set = 64;  // don't trip the set limit first
  HtmContext htm(config);
  std::vector<char> region(64 * kCacheLineBytes);
  htm.begin();
  bool rejected = false;
  for (std::size_t i = 0; i < 64; ++i) {
    if (!htm.record_store(region.data() + i * kCacheLineBytes, 1)) {
      rejected = true;
      EXPECT_EQ(htm.pending_abort(), HtmAbortCode::kCapacity);
      EXPECT_EQ(i, 8u);  // the 9th distinct line overflows
      break;
    }
  }
  EXPECT_TRUE(rejected);
  htm.abort(htm.pending_abort());
  EXPECT_EQ(htm.stats().aborted_capacity, 1u);
}

TEST(HtmTest, AssociativityAbortOnSameSet) {
  HtmConfig config = quiet_config();
  HtmContext htm(config);
  // Addresses mapping to the same L1 set: stride = sets * line size.
  const std::size_t stride = kL1Sets * kCacheLineBytes;
  std::vector<char> region(stride * (kL1Associativity + 2));
  htm.begin();
  bool rejected = false;
  std::size_t accepted = 0;
  for (std::size_t way = 0; way < kL1Associativity + 2; ++way) {
    if (!htm.record_store(region.data() + way * stride, 1)) {
      rejected = true;
      break;
    }
    ++accepted;
  }
  EXPECT_TRUE(rejected);
  EXPECT_EQ(accepted, kL1Associativity);
  htm.abort(htm.pending_abort());
}

TEST(HtmTest, SpanningStoreTouchesTwoLines) {
  HtmContext htm(quiet_config());
  alignas(kCacheLineBytes) char buf[2 * kCacheLineBytes];
  htm.begin();
  ASSERT_TRUE(htm.record_store(buf + kCacheLineBytes - 2, 4));
  EXPECT_EQ(htm.write_set_lines(), 2u);
  htm.commit();
}

TEST(HtmTest, InterruptAbortsFireProbabilistically) {
  HtmConfig config = quiet_config();
  config.interrupt_abort_per_store = 0.01;
  config.seed = 42;
  HtmContext htm(config);
  int aborts = 0;
  // Async events are sampled on new-line touches (the fast path for
  // repeated same-line stores models the hardware's free tracking), so
  // touch ten distinct lines per transaction.
  alignas(kCacheLineBytes) std::uint64_t words[10 * kCacheLineBytes /
                                               sizeof(std::uint64_t)] = {};
  for (int t = 0; t < 1000; ++t) {
    htm.begin();
    bool ok = true;
    for (int s = 0; s < 10 && ok; ++s) {
      ok = htm.record_store(&words[s * kCacheLineBytes / sizeof(words[0])],
                            sizeof(words[0]));
    }
    if (ok) {
      htm.commit();
    } else {
      EXPECT_EQ(htm.pending_abort(), HtmAbortCode::kInterrupt);
      htm.abort(htm.pending_abort());
      ++aborts;
    }
  }
  // ~1% per line touch, 10 touches per txn => ~10% of txns abort.
  EXPECT_GT(aborts, 40);
  EXPECT_LT(aborts, 250);
}

TEST(HtmTest, StatsAccumulateAcrossTransactions) {
  HtmContext htm(quiet_config());
  int x = 0;
  for (int i = 0; i < 5; ++i) {
    htm.begin();
    ASSERT_TRUE(htm.record_store(&x, sizeof(x)));
    x = i;
    htm.commit();
  }
  EXPECT_EQ(htm.stats().begun, 5u);
  EXPECT_EQ(htm.stats().committed, 5u);
  EXPECT_EQ(htm.stats().stores, 5u);
  EXPECT_EQ(x, 4);
}

TEST(HtmTest, AbortCodeNames) {
  EXPECT_STREQ(htm_abort_code_name(HtmAbortCode::kCapacity), "CAPACITY");
  EXPECT_STREQ(htm_abort_code_name(HtmAbortCode::kInterrupt), "INTERRUPT");
}

}  // namespace
}  // namespace fir
