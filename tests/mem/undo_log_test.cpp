// Undo-log unit + property tests: the inverse property over random store
// sequences is the foundation of all STM rollback guarantees.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "mem/undo_log.h"

namespace fir {
namespace {

TEST(UndoLogTest, RestoresSingleScalar) {
  int x = 10;
  UndoLog log;
  log.record(&x, sizeof(x));
  x = 99;
  log.rollback();
  EXPECT_EQ(x, 10);
  EXPECT_TRUE(log.empty());
}

TEST(UndoLogTest, RollbackIsNewestFirst) {
  int x = 1;
  UndoLog log;
  log.record(&x, sizeof(x));  // saves 1
  x = 2;
  log.record(&x, sizeof(x));  // saves 2
  x = 3;
  log.rollback();             // 3 -> 2 -> 1
  EXPECT_EQ(x, 1);
}

TEST(UndoLogTest, LargeStoresSpillToArena) {
  std::vector<char> buf(512, 'a');
  UndoLog log;
  log.record(buf.data(), buf.size());
  std::memset(buf.data(), 'z', buf.size());
  EXPECT_GE(log.logged_bytes(), 512u);
  log.rollback();
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(buf[511], 'a');
}

TEST(UndoLogTest, ClearDiscardsWithoutRestoring) {
  int x = 5;
  UndoLog log;
  log.record(&x, sizeof(x));
  x = 6;
  log.clear();
  EXPECT_EQ(x, 6);
  EXPECT_TRUE(log.empty());
}

TEST(UndoLogTest, FootprintTracksCapacity) {
  UndoLog log;
  const std::size_t before = log.footprint_bytes();
  std::vector<char> buf(4096);
  log.record(buf.data(), buf.size());
  EXPECT_GT(log.footprint_bytes(), before);
}

// Property: for any random sequence of overlapping stores, recording each
// store before applying it and rolling back restores the exact original.
class UndoLogPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UndoLogPropertyTest, RandomStoreSequencesInvert) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> region(1024);
  for (std::size_t i = 0; i < region.size(); ++i)
    region[i] = static_cast<std::uint8_t>(rng.next());
  const std::vector<std::uint8_t> original = region;

  UndoLog log;
  const int stores = 200;
  for (int s = 0; s < stores; ++s) {
    const std::size_t size = 1 + rng.index(64);
    const std::size_t at = rng.index(region.size() - size);
    log.record(region.data() + at, size);
    for (std::size_t i = 0; i < size; ++i)
      region[at + i] = static_cast<std::uint8_t>(rng.next());
  }
  EXPECT_EQ(log.entry_count(), static_cast<std::size_t>(stores));
  log.rollback();
  EXPECT_EQ(region, original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoLogPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace fir
