// Undo-log unit + property tests: the inverse property over random store
// sequences is the foundation of all STM rollback guarantees.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "mem/undo_log.h"

namespace fir {
namespace {

TEST(UndoLogTest, RestoresSingleScalar) {
  int x = 10;
  UndoLog log;
  log.record(&x, sizeof(x));
  x = 99;
  log.rollback();
  EXPECT_EQ(x, 10);
  EXPECT_TRUE(log.empty());
}

TEST(UndoLogTest, RollbackIsNewestFirst) {
  int x = 1;
  UndoLog log;
  log.record(&x, sizeof(x));  // saves 1
  x = 2;
  log.record(&x, sizeof(x));  // saves 2
  x = 3;
  log.rollback();             // 3 -> 2 -> 1
  EXPECT_EQ(x, 1);
}

TEST(UndoLogTest, LargeStoresSpillToArena) {
  std::vector<char> buf(512, 'a');
  UndoLog log;
  log.record(buf.data(), buf.size());
  std::memset(buf.data(), 'z', buf.size());
  EXPECT_GE(log.logged_bytes(), 512u);
  log.rollback();
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(buf[511], 'a');
}

TEST(UndoLogTest, ClearDiscardsWithoutRestoring) {
  int x = 5;
  UndoLog log;
  log.record(&x, sizeof(x));
  x = 6;
  log.clear();
  EXPECT_EQ(x, 6);
  EXPECT_TRUE(log.empty());
}

TEST(UndoLogTest, FootprintTracksCapacity) {
  UndoLog log;
  const std::size_t before = log.footprint_bytes();
  std::vector<char> buf(4096);
  log.record(buf.data(), buf.size());
  EXPECT_GT(log.footprint_bytes(), before);
}

TEST(UndoLogTest, SpillPointersSurviveArenaGrowth) {
  // Chunked arena: growing for later spills must not move earlier ones.
  // (A single resized buffer would invalidate every prior spill pointer.)
  UndoLog log;
  std::vector<std::vector<char>> bufs;
  for (int i = 0; i < 64; ++i) {
    bufs.emplace_back(8 * 1024, static_cast<char>('A' + i % 26));
    log.record(bufs.back().data(), bufs.back().size());
  }
  for (auto& b : bufs) std::memset(b.data(), '!', b.size());
  log.rollback();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(bufs[i][0], static_cast<char>('A' + i % 26));
    EXPECT_EQ(bufs[i].back(), static_cast<char>('A' + i % 26));
  }
}

TEST(UndoLogTest, OversizeStoreGetsDedicatedChunk) {
  UndoLog log;
  std::vector<char> big(1 << 20, 'x');  // larger than one arena chunk
  log.record(big.data(), big.size());
  std::memset(big.data(), 'y', big.size());
  log.rollback();
  EXPECT_EQ(big[0], 'x');
  EXPECT_EQ(big.back(), 'x');
  // The dedicated chunk exceeds the retention cap and is released.
  log.set_retention(64 * 1024);
  log.clear();
  EXPECT_LE(log.footprint_bytes(), 64u * 1024);
}

TEST(UndoLogTest, ClearRetainsBoundedCapacity) {
  UndoLog log;
  log.set_retention(128 * 1024);
  std::vector<char> buf(2 << 20);
  for (std::size_t at = 0; at + 256 <= buf.size(); at += 256)
    log.record(buf.data() + at, 256);
  EXPECT_GT(log.footprint_bytes(), 2u << 20);
  log.clear();
  // Cap bounds the retained arena; the shrunken entry reserve rides on top.
  EXPECT_LE(log.footprint_bytes(), 128u * 1024 + 16u * 1024);
  // Retained capacity is still usable for the next transaction.
  int x = 3;
  log.record(&x, sizeof(x));
  x = 4;
  log.rollback();
  EXPECT_EQ(x, 3);
}

TEST(UndoLogTest, ArenaReusedAcrossTransactionsWithoutRealloc) {
  UndoLog log;
  std::vector<char> buf(4 * 1024);
  log.record(buf.data(), buf.size());
  log.clear();
  const std::size_t settled = log.footprint_bytes();
  for (int tx = 0; tx < 10; ++tx) {
    log.record(buf.data(), buf.size());
    log.clear();
    EXPECT_EQ(log.footprint_bytes(), settled);
  }
}

// Property: for any random sequence of overlapping stores, recording each
// store before applying it and rolling back restores the exact original.
class UndoLogPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UndoLogPropertyTest, RandomStoreSequencesInvert) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> region(1024);
  for (std::size_t i = 0; i < region.size(); ++i)
    region[i] = static_cast<std::uint8_t>(rng.next());
  const std::vector<std::uint8_t> original = region;

  UndoLog log;
  const int stores = 200;
  for (int s = 0; s < stores; ++s) {
    const std::size_t size = 1 + rng.index(64);
    const std::size_t at = rng.index(region.size() - size);
    log.record(region.data() + at, size);
    for (std::size_t i = 0; i < size; ++i)
      region[at + i] = static_cast<std::uint8_t>(rng.next());
  }
  EXPECT_EQ(log.entry_count(), static_cast<std::size_t>(stores));
  log.rollback();
  EXPECT_EQ(region, original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoLogPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace fir
