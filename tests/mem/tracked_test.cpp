// Store-gate routing and tracked-scalar semantics.
#include <gtest/gtest.h>

#include "mem/tracked.h"
#include "stm/stm.h"

namespace fir {
namespace {

class TrackedTest : public ::testing::Test {
 protected:
  void TearDown() override { StoreGate::set_recorder(nullptr); }
};

TEST_F(TrackedTest, UntrackedStoresPassThrough) {
  StoreGate::set_recorder(nullptr);
  int x = 1;
  tx_store(x, 2);
  EXPECT_EQ(x, 2);
}

TEST_F(TrackedTest, StmRecorderLogsAndRollsBack) {
  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  int x = 1;
  tx_store(x, 2);
  tx_store(x, 3);  // first-write filter: already covered, no second entry
  StoreGate::set_recorder(nullptr);
  EXPECT_EQ(stm.log_entries(), 1u);
  stm.rollback();
  EXPECT_EQ(x, 1);
}

TEST_F(TrackedTest, TrackedScalarOperators) {
  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  tracked<int> v;
  v.init(10);
  v += 5;
  v -= 2;
  ++v;
  EXPECT_EQ(static_cast<int>(v), 14);
  StoreGate::set_recorder(nullptr);
  stm.rollback();
  EXPECT_EQ(static_cast<int>(v), 10);
}

TEST_F(TrackedTest, TxMemcpyAndMemsetAreTracked) {
  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  char buf[32] = "original-content";
  tx_memset(buf, 'x', 8);
  tx_memcpy(buf + 8, "ZZZZ", 4);
  StoreGate::set_recorder(nullptr);
  stm.rollback();
  EXPECT_STREQ(buf, "original-content");
}

TEST_F(TrackedTest, TxApplyReadModifyWrite) {
  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  int counter = 5;
  tx_apply(counter, [](int& c) { c *= 3; });
  EXPECT_EQ(counter, 15);
  StoreGate::set_recorder(nullptr);
  stm.rollback();
  EXPECT_EQ(counter, 5);
}

TEST_F(TrackedTest, ZeroSizeOpsAreNoOps) {
  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  char buf[4] = "abc";
  tx_memcpy(buf, "x", 0);
  tx_memset(buf, 'y', 0);
  EXPECT_EQ(stm.log_entries(), 0u);
  StoreGate::set_recorder(nullptr);
  stm.commit();
}

TEST_F(TrackedTest, RecorderSwapReturnsPrevious) {
  StmContext a, b;
  a.begin();
  b.begin();
  EXPECT_EQ(StoreGate::set_recorder(&a), nullptr);
  EXPECT_EQ(StoreGate::set_recorder(&b), &a);
  EXPECT_EQ(StoreGate::set_recorder(nullptr), &b);
  a.commit();
  b.commit();
}

}  // namespace
}  // namespace fir
