#include <gtest/gtest.h>

#include "mem/tracked_buffer.h"
#include "stm/stm.h"

namespace fir {
namespace {

class TrackedBufferTest : public ::testing::Test {
 protected:
  void TearDown() override { StoreGate::set_recorder(nullptr); }
};

TEST_F(TrackedBufferTest, AppendAndView) {
  TrackedBuffer buf(16);
  EXPECT_TRUE(buf.empty());
  EXPECT_TRUE(buf.append("hello"));
  EXPECT_TRUE(buf.push_back('!'));
  EXPECT_EQ(buf.view(), "hello!");
  EXPECT_EQ(buf.size(), 6u);
  EXPECT_EQ(buf.remaining(), 10u);
}

TEST_F(TrackedBufferTest, AppendBeyondCapacityFails) {
  TrackedBuffer buf(4);
  EXPECT_TRUE(buf.append("abcd"));
  EXPECT_FALSE(buf.append("e"));
  EXPECT_EQ(buf.view(), "abcd");  // unchanged
}

TEST_F(TrackedBufferTest, OverwriteInPlace) {
  TrackedBuffer buf(16);
  buf.append("abcdef");
  buf.overwrite(2, "XY", 2);
  EXPECT_EQ(buf.view(), "abXYef");
}

TEST_F(TrackedBufferTest, ConsumeFromFront) {
  TrackedBuffer buf(16);
  buf.append("request1rest");
  buf.consume(8);
  EXPECT_EQ(buf.view(), "rest");
  buf.consume(4);
  EXPECT_TRUE(buf.empty());
}

TEST_F(TrackedBufferTest, ClearAndResizeDown) {
  TrackedBuffer buf(16);
  buf.append("abcdef");
  buf.resize_down(3);
  EXPECT_EQ(buf.view(), "abc");
  buf.clear();
  EXPECT_TRUE(buf.empty());
}

TEST_F(TrackedBufferTest, MutationsRollBackUnderStm) {
  TrackedBuffer buf(32);
  buf.append("stable");

  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  buf.append("-junk");
  buf.overwrite(0, "XXXX", 4);
  buf.consume(2);
  StoreGate::set_recorder(nullptr);
  stm.rollback();

  EXPECT_EQ(buf.view(), "stable");
}

TEST_F(TrackedBufferTest, ClearRollsBackLength) {
  TrackedBuffer buf(16);
  buf.append("keepme");
  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  StoreGate::set_recorder(nullptr);
  stm.rollback();
  EXPECT_EQ(buf.view(), "keepme");
}

}  // namespace
}  // namespace fir
