// First-write filter unit tests: coverage masks, epoch reset, growth,
// retention shrink, and the line-membership mode the HTM model uses.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mem/write_filter.h"

namespace fir {
namespace {

constexpr std::uintptr_t kLine = 0x1000;  // any line-aligned address

TEST(WriteFilterTest, FirstCoverIsAMissSecondIsAHit) {
  WriteFilter filter;
  const std::uint64_t mask = WriteFilter::span_mask(kLine + 8, 8);
  EXPECT_FALSE(filter.cover(kLine, mask));
  EXPECT_TRUE(filter.cover(kLine, mask));
  EXPECT_EQ(filter.lines(), 1u);
  EXPECT_EQ(filter.hits(), 1u);
}

TEST(WriteFilterTest, SubsetMasksHitSupersetsMiss) {
  WriteFilter filter;
  filter.cover(kLine, WriteFilter::span_mask(kLine + 8, 16));  // bytes 8..24
  EXPECT_TRUE(filter.cover(kLine, WriteFilter::span_mask(kLine + 12, 4)));
  EXPECT_FALSE(filter.cover(kLine, WriteFilter::span_mask(kLine + 20, 8)));
  // The miss widened coverage to 8..28; re-probe of the union now hits.
  EXPECT_TRUE(filter.cover(kLine, WriteFilter::span_mask(kLine + 8, 20)));
}

TEST(WriteFilterTest, SpanMaskEdges) {
  EXPECT_EQ(WriteFilter::span_mask(kLine, 1), 0x1ull);
  EXPECT_EQ(WriteFilter::span_mask(kLine + 63, 1), 0x8000000000000000ull);
  EXPECT_EQ(WriteFilter::span_mask(kLine, kCacheLineBytes),
            WriteFilter::kFullLineMask);
}

TEST(WriteFilterTest, CoversRequiresSingleLineSpan) {
  WriteFilter filter;
  filter.cover(kLine, WriteFilter::kFullLineMask);
  filter.cover(kLine + kCacheLineBytes, WriteFilter::kFullLineMask);
  auto* p = reinterpret_cast<void*>(kLine + kCacheLineBytes - 4);
  // Both lines fully covered, but the span straddles them: the fast probe
  // must decline (the slow path segments it).
  EXPECT_FALSE(filter.covers(p, 8));
  EXPECT_TRUE(filter.covers(reinterpret_cast<void*>(kLine + 4), 8));
  EXPECT_FALSE(filter.covers(p, 0));
}

TEST(WriteFilterTest, ResetForgetsCoverageInConstantTime) {
  WriteFilter filter;
  for (std::uintptr_t i = 0; i < 32; ++i)
    filter.cover(kLine + i * kCacheLineBytes, WriteFilter::kFullLineMask);
  EXPECT_EQ(filter.lines(), 32u);
  filter.reset();  // O(1): epoch bump, no clearing loop
  EXPECT_EQ(filter.lines(), 0u);
  EXPECT_FALSE(filter.contains(kLine));
  EXPECT_FALSE(filter.cover(kLine, WriteFilter::kFullLineMask));
}

TEST(WriteFilterTest, GrowthPreservesCoverage) {
  WriteFilter filter(4);  // tiny initial table: forces repeated rehashes
  std::vector<std::uintptr_t> lines;
  for (std::uintptr_t i = 0; i < 5000; ++i)
    lines.push_back(kLine + i * kCacheLineBytes);
  for (std::uintptr_t line : lines) {
    EXPECT_FALSE(filter.cover(line, WriteFilter::span_mask(line, 8)));
  }
  EXPECT_EQ(filter.lines(), lines.size());
  for (std::uintptr_t line : lines) {
    EXPECT_TRUE(filter.cover(line, WriteFilter::span_mask(line, 8)));
    EXPECT_FALSE(filter.contains(line + kCacheLineBytes * 100000));
  }
}

TEST(WriteFilterTest, ShrinkEnforcesRetentionCap) {
  WriteFilter filter;
  for (std::uintptr_t i = 0; i < 100000; ++i)
    filter.cover(kLine + i * kCacheLineBytes, WriteFilter::kFullLineMask);
  const std::size_t grown = filter.footprint_bytes();
  EXPECT_GT(grown, 1u << 20);
  filter.reset();
  filter.shrink(1u << 20);
  EXPECT_LT(filter.footprint_bytes(), grown);
  EXPECT_LE(filter.footprint_bytes(), 1u << 20);
  // Shrink invalidates all coverage; the filter keeps working.
  EXPECT_FALSE(filter.cover(kLine, WriteFilter::kFullLineMask));
  EXPECT_TRUE(filter.cover(kLine, WriteFilter::kFullLineMask));
  // Under the cap: shrink is a no-op.
  const std::size_t small = filter.footprint_bytes();
  filter.shrink(1u << 20);
  EXPECT_EQ(filter.footprint_bytes(), small);
}

TEST(WriteFilterTest, CoversCountsElisions) {
  WriteFilter filter;
  auto* p = reinterpret_cast<void*>(kLine + 16);
  EXPECT_FALSE(filter.covers(p, 8));  // miss: nothing covered yet
  filter.cover(kLine, WriteFilter::span_mask(kLine + 16, 8));
  EXPECT_TRUE(filter.covers(p, 8));
  EXPECT_TRUE(filter.covers(p, 4));   // subset
  EXPECT_FALSE(filter.covers(p, 16));  // extends past coverage
  EXPECT_EQ(filter.spans_elided(), 2u);
  EXPECT_GE(filter.hits(), 2u);
  filter.reset_counters();
  EXPECT_EQ(filter.spans_elided(), 0u);
  EXPECT_EQ(filter.hits(), 0u);
}

// Property: the filter's elision decisions never change what a mirrored
// byte-map says should be covered.
TEST(WriteFilterTest, RandomCoverageMatchesReferenceModel) {
  Rng rng(1234);
  WriteFilter filter(8);
  const std::size_t kLines = 64;
  std::vector<std::vector<bool>> reference(
      kLines, std::vector<bool>(kCacheLineBytes, false));
  for (int step = 0; step < 5000; ++step) {
    const std::size_t li = rng.index(kLines);
    const std::size_t size = 1 + rng.index(kCacheLineBytes);
    const std::size_t off = rng.index(kCacheLineBytes - size + 1);
    const std::uintptr_t line = kLine + li * kCacheLineBytes;
    bool all_covered = true;
    for (std::size_t b = off; b < off + size; ++b)
      all_covered = all_covered && reference[li][b];
    EXPECT_EQ(filter.cover(line, WriteFilter::span_mask(line + off, size)),
              all_covered);
    for (std::size_t b = off; b < off + size; ++b) reference[li][b] = true;
  }
}

}  // namespace
}  // namespace fir
