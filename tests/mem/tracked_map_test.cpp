#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "mem/tracked_map.h"
#include "stm/stm.h"

namespace fir {
namespace {

using Key = FixedString<16>;
using Value = FixedString<32>;
using Map = TrackedHashMap<Key, Value>;

bool put(Map& m, std::string_view k, std::string_view v) {
  auto fk = Key::make(k);
  auto fv = Value::make(v);
  if (!fk || !fv) return false;
  return m.put(k, *fk, *fv);
}

TEST(FixedStringTest, MakeRejectsOversize) {
  EXPECT_TRUE(Key::make("0123456789012345").has_value());   // exactly 16
  EXPECT_FALSE(Key::make("01234567890123456").has_value()); // 17
}

TEST(TrackedHashMapTest, PutGetErase) {
  Map m(64);
  EXPECT_TRUE(put(m, "a", "1"));
  EXPECT_TRUE(put(m, "b", "2"));
  ASSERT_NE(m.get("a"), nullptr);
  EXPECT_EQ(m.get("a")->view(), "1");
  EXPECT_EQ(m.get("c"), nullptr);
  EXPECT_TRUE(m.erase("a"));
  EXPECT_FALSE(m.erase("a"));
  EXPECT_EQ(m.get("a"), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(TrackedHashMapTest, OverwriteKeepsSize) {
  Map m(64);
  put(m, "k", "v1");
  put(m, "k", "v2");
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.get("k")->view(), "v2");
}

TEST(TrackedHashMapTest, TombstoneSlotsAreReused) {
  Map m(16);
  for (int round = 0; round < 100; ++round) {
    const std::string k = "key" + std::to_string(round % 5);
    ASSERT_TRUE(put(m, k, "v")) << "round " << round;
    ASSERT_TRUE(m.erase(k));
  }
  EXPECT_EQ(m.size(), 0u);
}

TEST(TrackedHashMapTest, FillsToMaxSizeThenRejects) {
  Map m(16);  // capacity 16, max load 70% => 11
  std::size_t inserted = 0;
  for (int i = 0; i < 32; ++i) {
    if (put(m, "k" + std::to_string(i), "v")) ++inserted;
  }
  EXPECT_EQ(inserted, m.max_size());
  EXPECT_EQ(m.size(), m.max_size());
}

TEST(TrackedHashMapTest, ForEachVisitsAllLiveEntries) {
  Map m(64);
  put(m, "x", "1");
  put(m, "y", "2");
  put(m, "z", "3");
  m.erase("y");
  int count = 0;
  m.for_each([&](const Key&, const Value&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(TrackedHashMapTest, MutationsRollBackUnderStm) {
  Map m(64);
  put(m, "stable", "before");

  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  put(m, "new", "x");
  put(m, "stable", "after");
  m.erase("stable");
  StoreGate::set_recorder(nullptr);
  stm.rollback();

  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.get("stable"), nullptr);
  EXPECT_EQ(m.get("stable")->view(), "before");
  EXPECT_EQ(m.get("new"), nullptr);
}

// Property: the tracked map agrees with std::map under a random op mix,
// and a rolled-back burst of operations leaves it exactly as before.
class TrackedMapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TrackedMapPropertyTest, AgreesWithReferenceAndRollsBack) {
  Rng rng(GetParam());
  Map m(256);
  std::map<std::string, std::string> ref;

  auto key_of = [&](int i) { return "k" + std::to_string(i % 40); };
  for (int op = 0; op < 500; ++op) {
    const std::string k = key_of(static_cast<int>(rng.next_below(1000)));
    if (rng.chance(0.6)) {
      const std::string v = "v" + std::to_string(rng.next_below(100));
      if (put(m, k, v)) ref[k] = v;
    } else {
      const bool a = m.erase(k);
      const bool b = ref.erase(k) > 0;
      EXPECT_EQ(a, b);
    }
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.get(k), nullptr) << k;
    EXPECT_EQ(m.get(k)->view(), v);
  }

  // Burst under STM, then roll back: state must be identical.
  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  for (int op = 0; op < 200; ++op) {
    const std::string k = key_of(static_cast<int>(rng.next_below(1000)));
    if (rng.chance(0.5)) {
      put(m, k, "junk");
    } else {
      m.erase(k);
    }
  }
  StoreGate::set_recorder(nullptr);
  stm.rollback();

  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.get(k), nullptr) << k;
    EXPECT_EQ(m.get(k)->view(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackedMapPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace fir
