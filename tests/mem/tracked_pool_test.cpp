#include <gtest/gtest.h>

#include "mem/tracked_pool.h"
#include "stm/stm.h"

namespace fir {
namespace {

struct Obj {
  int a;
  char buf[24];
};

TEST(TrackedPoolTest, AllocReleaseCycle) {
  TrackedPool<Obj> pool(4);
  Obj* o1 = pool.alloc();
  ASSERT_NE(o1, nullptr);
  EXPECT_EQ(o1->a, 0);  // zero-initialized
  EXPECT_EQ(pool.live(), 1u);
  pool.release(o1);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(TrackedPoolTest, ExhaustionReturnsNull) {
  TrackedPool<Obj> pool(2);
  EXPECT_NE(pool.alloc(), nullptr);
  EXPECT_NE(pool.alloc(), nullptr);
  EXPECT_EQ(pool.alloc(), nullptr);
  EXPECT_TRUE(pool.full());
}

TEST(TrackedPoolTest, ReleaseMakesSlotReusable) {
  TrackedPool<Obj> pool(1);
  Obj* o = pool.alloc();
  ASSERT_NE(o, nullptr);
  pool.release(o);
  Obj* o2 = pool.alloc();
  EXPECT_EQ(o, o2);  // same slot reused
}

TEST(TrackedPoolTest, IndexOfRoundTrips) {
  TrackedPool<Obj> pool(8);
  Obj* a = pool.alloc();
  Obj* b = pool.alloc();
  EXPECT_EQ(pool.at(pool.index_of(a)), a);
  EXPECT_EQ(pool.at(pool.index_of(b)), b);
}

TEST(TrackedPoolTest, AllocationRollsBackUnderStm) {
  TrackedPool<Obj> pool(4);
  Obj* pre = pool.alloc();
  ASSERT_NE(pre, nullptr);

  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  Obj* inside = pool.alloc();
  ASSERT_NE(inside, nullptr);
  tx_store(inside->a, 42);
  pool.release(pre);
  StoreGate::set_recorder(nullptr);
  stm.rollback();

  // Rolled back: `inside` allocation undone, `pre` still live.
  EXPECT_EQ(pool.live(), 1u);
  Obj* again = pool.alloc();
  EXPECT_EQ(again, inside);  // free-list head restored
  EXPECT_EQ(again->a, 0);
}

TEST(TrackedPoolTest, ReleaseRollsBackUnderStm) {
  TrackedPool<Obj> pool(4);
  Obj* o = pool.alloc();
  tx_store(o->a, 7);

  StmContext stm;
  stm.begin();
  StoreGate::set_recorder(&stm);
  pool.release(o);
  StoreGate::set_recorder(nullptr);
  stm.rollback();

  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(o->a, 7);
}

}  // namespace
}  // namespace fir
