// Exporters: exact (golden) JSONL / JSON / CSV output over hand-built
// rings and registries, symbolizer behavior, and JSON escaping.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"

namespace fir::obs {
namespace {

SiteSymbolizer test_symbolizer() {
  return [](std::uint32_t site, std::string* function, std::string* location) {
    if (site != 7) return false;
    *function = "socket";
    *location = "src/apps/miniginx.cpp:42";
    return true;
  };
}

TEST(ExportTest, TraceJsonlGolden) {
  TraceRing ring(8);
  ring.set_enabled(true);
  ring.emit(EventKind::kTxBegin, 7, 1500, "htm");
  ring.emit(EventKind::kCrash, 7, 2500, "SIGSEGV");
  ring.emit(EventKind::kFaultInjection, 7, 3500, "SIGSEGV", -1, 104);
  ring.emit(EventKind::kTxCommit, kNoSite, 4500);

  const std::string expected =
      "{\"seq\":0,\"t_ns\":1500,\"thread\":0,\"kind\":\"tx-begin\","
      "\"class\":\"tx\",\"site\":7,\"function\":\"socket\","
      "\"location\":\"src/apps/miniginx.cpp:42\",\"code\":\"htm\"}\n"
      "{\"seq\":1,\"t_ns\":2500,\"thread\":0,\"kind\":\"crash\","
      "\"class\":\"recovery\",\"site\":7,\"function\":\"socket\","
      "\"location\":\"src/apps/miniginx.cpp:42\",\"code\":\"SIGSEGV\"}\n"
      "{\"seq\":2,\"t_ns\":3500,\"thread\":0,\"kind\":\"fault-injection\","
      "\"class\":\"recovery\",\"site\":7,\"function\":\"socket\","
      "\"location\":\"src/apps/miniginx.cpp:42\",\"code\":\"SIGSEGV\","
      "\"a0\":-1,\"a1\":104}\n"
      "{\"seq\":3,\"t_ns\":4500,\"thread\":0,\"kind\":\"tx-commit\","
      "\"class\":\"tx\"}\n";
  EXPECT_EQ(trace_jsonl(ring, test_symbolizer()), expected);
}

TEST(ExportTest, TraceJsonlWithoutSymbolizerKeepsRawSiteIds) {
  TraceRing ring(4);
  ring.set_enabled(true);
  ring.emit(EventKind::kRollback, 3, 100, "stm");
  EXPECT_EQ(trace_jsonl(ring),
            "{\"seq\":0,\"t_ns\":100,\"thread\":0,\"kind\":\"rollback\","
            "\"class\":\"recovery\",\"site\":3,\"code\":\"stm\"}\n");
}

TEST(ExportTest, MetricsJsonGolden) {
  MetricsRegistry registry;
  registry.counter("tx.commits").inc(12);
  registry.gauge("gate.sites").set(3);
  Histogram& h = registry.histogram("recovery.latency_seconds");
  h.add(2.0);
  h.add(2.0);

  EXPECT_EQ(metrics_json(registry),
            "{\"counters\":{\"tx.commits\":12},"
            "\"gauges\":{\"gate.sites\":3},"
            "\"histograms\":{\"recovery.latency_seconds\":"
            "{\"count\":2,\"mean\":2,\"p50\":2,\"p95\":2,\"max\":2}}}");
}

TEST(ExportTest, MetricsCsvGolden) {
  MetricsRegistry registry;
  registry.counter("tx.commits").inc(12);
  registry.gauge("gate.sites").set(3);
  Histogram& h = registry.histogram("lat");
  h.add(0.5);

  EXPECT_EQ(metrics_csv(registry),
            "name,kind,value,mean,p50,p95,max\n"
            "gate.sites,gauge,3,,,,\n"
            "lat,histogram,1,0.5,0.5,0.5,0.5\n"
            "tx.commits,counter,12,,,,\n");
}

TEST(ExportTest, EmptyRegistryExportsEmptyDocuments) {
  MetricsRegistry registry;
  EXPECT_EQ(metrics_json(registry),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(metrics_csv(registry), "name,kind,value,mean,p50,p95,max\n");
}

TEST(ExportTest, JsonEscapeHandlesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string("ctl\x01", 4)), "ctl\\u0001");
}

}  // namespace
}  // namespace fir::obs
