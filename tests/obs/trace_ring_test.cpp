// TraceRing: capacity rounding, ordering, wraparound/overwrite semantics,
// filtering, and the disabled fast path recording nothing.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/trace_ring.h"

namespace fir::obs {
namespace {

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(2).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(4096).capacity(), 4096u);
  EXPECT_EQ(TraceRing(5000).capacity(), 8192u);
}

TEST(TraceRingTest, DisabledEmitRecordsNothing) {
  TraceRing ring(16);
  ASSERT_FALSE(ring.enabled());
  ring.emit(EventKind::kCrash, 1, 100);
  ring.emit(EventKind::kTxBegin, 2, 200);
  EXPECT_EQ(ring.total_emitted(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_FALSE(ring.wants(EventKind::kCrash));
}

TEST(TraceRingTest, EventsCarryPayloadAndOrdering) {
  TraceRing ring(16);
  ring.set_enabled(true);
  ring.emit(EventKind::kTxBegin, 3, 1000, "htm");
  ring.emit(EventKind::kCrash, 3, 2000, "SIGSEGV", -1, 11);
  ring.emit(EventKind::kTxCommit, 4, 3000, "stm");

  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kTxBegin);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].t_ns, 1000u);
  EXPECT_STREQ(events[0].code, "htm");
  EXPECT_EQ(events[1].kind, EventKind::kCrash);
  EXPECT_EQ(events[1].site, 3u);
  EXPECT_EQ(events[1].a0, -1);
  EXPECT_EQ(events[1].a1, 11);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[2].site, 4u);
}

TEST(TraceRingTest, WraparoundKeepsNewestAndCountsDropped) {
  TraceRing ring(4);
  ring.set_enabled(true);
  ASSERT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.emit(EventKind::kRetry, 9, i * 10);
  }
  EXPECT_EQ(ring.total_emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);

  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: seq 6..9 survive.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
    EXPECT_EQ(events[i].t_ns, (6u + i) * 10);
  }
}

TEST(TraceRingTest, FilterSuppressesUnwantedKinds) {
  TraceRing ring(16);
  ring.set_enabled(true);
  ring.set_filter(event_class_mask(EventClass::kRecovery));
  EXPECT_TRUE(ring.wants(EventKind::kCrash));
  EXPECT_FALSE(ring.wants(EventKind::kTxBegin));

  ring.emit(EventKind::kTxBegin, 1, 1);       // filtered out
  ring.emit(EventKind::kCrash, 1, 2);         // kept
  ring.emit(EventKind::kSiteDemotion, 1, 3);  // htm class: filtered out
  ring.emit(EventKind::kRollback, 1, 4);      // kept

  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kCrash);
  EXPECT_EQ(events[1].kind, EventKind::kRollback);
}

TEST(TraceRingTest, ClearForgetsEventsButKeepsSwitches) {
  TraceRing ring(8);
  ring.set_enabled(true);
  ring.emit(EventKind::kTxBegin, 1, 1);
  ring.emit(EventKind::kTxCommit, 1, 2);
  ASSERT_EQ(ring.snapshot().size(), 2u);

  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.total_emitted(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.enabled());

  // The ring keeps working after a clear.
  ring.emit(EventKind::kTxBegin, 1, 3);
  EXPECT_EQ(ring.snapshot().size(), 1u);
}

TEST(TraceRingTest, ConcurrentEmittersLoseNoAcceptedEvents) {
  TraceRing ring(1024);
  ring.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.emit(EventKind::kTxCommit, static_cast<std::uint32_t>(t),
                  static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ring.total_emitted(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  // Snapshot is seq-ordered with no duplicates or holes.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
}

TEST(TraceRingTest, EventIsExactlyOneCacheLine) {
  EXPECT_EQ(sizeof(TraceEvent), kCacheLineBytes);
  // 4096-slot default ring = 256 KiB of slots plus slot stamps.
  EXPECT_EQ(TraceRing::kDefaultCapacity, 4096u);
}

}  // namespace
}  // namespace fir::obs
