// MetricsRegistry: reference stability, the two publishing styles
// (live metrics and snapshot-time collectors), snapshot ordering, reset.
#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace fir::obs {
namespace {

TEST(MetricsTest, CounterIncrementsAndResets) {
  MetricsRegistry registry;
  Counter& c = registry.counter("tx.commits");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.set(42);  // collector-style publication
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("gate.calls");
  Counter& b = registry.counter("gate.calls");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsTest, ReferencesSurviveLaterRegistrations) {
  MetricsRegistry registry;
  Counter& first = registry.counter("a.first");
  // Registering many more must not invalidate the earlier reference.
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i)).inc();
  }
  first.inc();
  EXPECT_EQ(registry.counter("a.first").value(), 1u);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("zeta").inc();
  registry.gauge("alpha").set(1.0);
  registry.histogram("mid").add(0.5);

  const std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[2].name, "zeta");
}

TEST(MetricsTest, HistogramSamplesCarrySummaryStats) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("recovery.latency_seconds");
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));

  const std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  const MetricSample& s = samples[0];
  EXPECT_EQ(s.kind, MetricSample::Kind::kHistogram);
  EXPECT_DOUBLE_EQ(s.value, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_GE(s.p95, s.p50);
}

TEST(MetricsTest, CollectorsRunAtSnapshotTime) {
  MetricsRegistry registry;
  std::uint64_t module_tally = 0;
  registry.add_collector([&module_tally](MetricsRegistry& reg) {
    reg.counter("module.tally").set(module_tally);
  });

  module_tally = 7;
  std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);

  // The collector re-publishes the current value on every snapshot.
  module_tally = 9;
  samples = registry.snapshot();
  EXPECT_DOUBLE_EQ(samples[0].value, 9.0);
}

TEST(MetricsTest, ResetZeroesValuesButKeepsNamesAndCollectors) {
  MetricsRegistry registry;
  registry.counter("c").inc(3);
  registry.gauge("g").set(2.5);
  registry.histogram("h").add(1.0);
  bool collected = false;
  registry.add_collector([&collected](MetricsRegistry&) { collected = true; });

  registry.reset();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 0.0);
  EXPECT_TRUE(registry.histogram("h").empty());

  registry.snapshot();
  EXPECT_TRUE(collected);
}

}  // namespace
}  // namespace fir::obs
