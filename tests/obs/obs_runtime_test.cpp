// End-to-end observability: the recovery runtime publishes the full event
// chain (crash -> rollback -> retry -> compensation -> fault injection)
// with consistent site ids, the FIR_TRACE_* environment configures it, and
// the shutdown dump lands on disk.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "interpose/fir.h"
#include "mem/tracked.h"
#include "obs/cli.h"

namespace fir {
namespace {

using obs::EventKind;

TxManagerConfig traced_config() {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kStmOnly;
  config.obs.trace_enabled = true;
  return config;
}

std::uint64_t count_kind(const std::vector<obs::TraceEvent>& events,
                         EventKind kind, std::uint32_t* site_out = nullptr) {
  std::uint64_t n = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.kind != kind) continue;
    ++n;
    if (site_out != nullptr) *site_out = e.site;
  }
  return n;
}

TEST(ObsRuntimeTest, PersistentCrashTracesFullRecoveryChain) {
  Fx fx(traced_config());
  FIR_ANCHOR(fx);

  const int rv = FIR_SOCKET(fx);
  // First crash: rollback + retry. Second: compensation + injected error.
  // After diversion the gate yields the documented error, ending the loop.
  if (rv >= 0) raise_crash(CrashKind::kSegv);
  EXPECT_EQ(rv, -1);
  EXPECT_TRUE(fx.mgr().diverted());
  FIR_QUIESCE(fx);

  const std::vector<obs::TraceEvent> events =
      fx.mgr().obs().trace().snapshot();
  std::uint32_t crash_site = obs::kNoSite;
  std::uint32_t comp_site = obs::kNoSite;
  std::uint32_t inject_site = obs::kNoSite;
  std::uint32_t rollback_site = obs::kNoSite;
  EXPECT_GE(count_kind(events, EventKind::kCrash, &crash_site), 2u);
  EXPECT_GE(count_kind(events, EventKind::kRollback, &rollback_site), 2u);
  EXPECT_EQ(count_kind(events, EventKind::kRetry), 1u);
  EXPECT_EQ(count_kind(events, EventKind::kCompensation, &comp_site), 1u);
  EXPECT_EQ(count_kind(events, EventKind::kFaultInjection, &inject_site), 1u);

  // The whole chain names the same site: the socket gate.
  EXPECT_NE(crash_site, obs::kNoSite);
  EXPECT_EQ(comp_site, crash_site);
  EXPECT_EQ(inject_site, crash_site);
  EXPECT_EQ(rollback_site, crash_site);

  // Metrics agree with the trace.
  obs::MetricsRegistry& metrics = fx.mgr().metrics();
  EXPECT_EQ(metrics.counter("recovery.retries").value(), 1u);
  EXPECT_EQ(metrics.counter("recovery.compensations").value(), 1u);
  EXPECT_EQ(metrics.counter("recovery.diversions").value(), 1u);

  // The JSONL rendering symbolizes the site.
  const std::string jsonl = FIR_TRACE_JSONL(fx);
  EXPECT_NE(jsonl.find("\"kind\":\"fault-injection\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"function\":\"socket\""), std::string::npos);
}

TEST(ObsRuntimeTest, DisabledTracingUsesTokenRingAndStillCountsMetrics) {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kStmOnly;
  // Explicit, so this holds under -DFIR_TRACE=ON builds too. A FIR_TRACE=1
  // environment would still override it; the test runner does not set one.
  config.obs.trace_enabled = false;
  Fx fx(config);
  FIR_ANCHOR(fx);
  const int fd = FIR_SOCKET(fx);
  ASSERT_GE(fd, 0);
  FIR_QUIESCE(fx);

  EXPECT_EQ(fx.mgr().obs().trace().capacity(), 2u);
  EXPECT_EQ(fx.mgr().obs().trace().total_emitted(), 0u);
  // Counters publish regardless of tracing.
  EXPECT_EQ(fx.mgr().metrics().counter("tx.stm").value(), 0u);  // pre-snapshot
  const auto samples = fx.mgr().metrics().snapshot();
  EXPECT_EQ(fx.mgr().metrics().counter("tx.stm").value(), 1u);
  EXPECT_FALSE(samples.empty());
}

TEST(ObsRuntimeTest, SiteDemotionIsPublished) {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kAdaptive;
  config.policy.abort_threshold = 0.01;
  config.policy.sample_size = 2;
  config.htm.interrupt_abort_per_store = 0.0;
  config.htm.max_write_lines = 4;
  config.obs.trace_enabled = true;
  Fx fx(config);
  FIR_ANCHOR(fx);

  std::vector<char> big(64 * kCacheLineBytes);
  for (int round = 0; round < 8; ++round) {
    const int fd = FIR_SOCKET(fx);
    ASSERT_GE(fd, 0);
    tx_memset(big.data(), 'x', big.size());  // overflows the HTM write-set
  }
  FIR_QUIESCE(fx);

  const std::vector<obs::TraceEvent> events =
      fx.mgr().obs().trace().snapshot();
  EXPECT_GE(count_kind(events, EventKind::kHtmAbort), 1u);
  EXPECT_GE(count_kind(events, EventKind::kStmFallback), 1u);
  EXPECT_GE(count_kind(events, EventKind::kSiteDemotion), 1u);
  EXPECT_GE(fx.mgr().metrics().counter("policy.demotions").value(), 1u);
}

TEST(ObsConfigTest, EnvironmentOverridesProgrammaticDefaults) {
  ::setenv("FIR_TRACE", "1", 1);
  ::setenv("FIR_TRACE_RING", "100", 1);
  ::setenv("FIR_TRACE_FILTER", "recovery,tx-begin", 1);
  const obs::ObsConfig config = obs::ObsConfig::from_env();
  ::unsetenv("FIR_TRACE");
  ::unsetenv("FIR_TRACE_RING");
  ::unsetenv("FIR_TRACE_FILTER");

  EXPECT_TRUE(config.trace_enabled);
  EXPECT_EQ(config.ring_capacity, 100u);
  EXPECT_EQ(config.event_mask,
            obs::event_class_mask(obs::EventClass::kRecovery) |
                obs::event_bit(EventKind::kTxBegin));
}

TEST(ObsConfigTest, TraceOutImpliesTracing) {
  ::setenv("FIR_TRACE_OUT", "/tmp/some-trace.jsonl", 1);
  const obs::ObsConfig config = obs::ObsConfig::from_env();
  ::unsetenv("FIR_TRACE_OUT");
  EXPECT_TRUE(config.trace_enabled);
  EXPECT_EQ(config.trace_out, "/tmp/some-trace.jsonl");
}

TEST(ObsConfigTest, UnknownFilterTokensFallBackToAllEvents) {
  EXPECT_EQ(obs::parse_event_filter(""), obs::kAllEventsMask);
  EXPECT_EQ(obs::parse_event_filter("nonsense"), obs::kAllEventsMask);
  EXPECT_EQ(obs::parse_event_filter("all"), obs::kAllEventsMask);
  EXPECT_EQ(obs::parse_event_filter("crash"),
            obs::event_bit(EventKind::kCrash));
}

TEST(ObsConfigTest, CliFlagsExportEnvironment) {
  const char* raw[] = {"prog",         "--trace-out=/tmp/cli.jsonl",
                       "--keep-me",    "--trace-ring",
                       "128",          "--metrics-out=/tmp/cli.csv",
                       nullptr};
  char* argv[7];
  for (int i = 0; i < 7; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 6;
  obs::apply_cli_flags(&argc, argv);

  EXPECT_EQ(argc, 2);  // program name + --keep-me survive
  EXPECT_STREQ(argv[1], "--keep-me");
  EXPECT_STREQ(std::getenv("FIR_TRACE_OUT"), "/tmp/cli.jsonl");
  EXPECT_STREQ(std::getenv("FIR_TRACE_RING"), "128");
  EXPECT_STREQ(std::getenv("FIR_METRICS_OUT"), "/tmp/cli.csv");
  ::unsetenv("FIR_TRACE_OUT");
  ::unsetenv("FIR_TRACE_RING");
  ::unsetenv("FIR_METRICS_OUT");
}

TEST(ObsRuntimeTest, ShutdownDumpWritesConfiguredFiles) {
  const std::string trace_path =
      ::testing::TempDir() + "fir_obs_dump_trace.jsonl";
  const std::string metrics_path =
      ::testing::TempDir() + "fir_obs_dump_metrics.csv";
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  {
    TxManagerConfig config = traced_config();
    config.obs.trace_out = trace_path;
    config.obs.metrics_out = metrics_path;
    Fx fx(config);
    FIR_ANCHOR(fx);
    const int fd = FIR_SOCKET(fx);
    ASSERT_GE(fd, 0);
    FIR_QUIESCE(fx);
  }  // ~TxManager flushes the dumps

  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::stringstream trace_text;
  trace_text << trace.rdbuf();
  EXPECT_NE(trace_text.str().find("\"kind\":\"tx-begin\""),
            std::string::npos);
  EXPECT_NE(trace_text.str().find("\"function\":\"socket\""),
            std::string::npos);

  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::string header;
  std::getline(metrics, header);
  EXPECT_EQ(header, "name,kind,value,mean,p50,p95,max");
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

}  // namespace
}  // namespace fir
