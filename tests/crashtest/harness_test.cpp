// The crash-point harness on itself: the durable servers must hold all
// three invariants at every persistence point, clean and torn.
#include <gtest/gtest.h>

#include "crashtest/harness.h"

namespace fir::crashtest {
namespace {

void expect_all_points_ok(const CrashTestReport& report) {
  EXPECT_TRUE(report.passed);
  EXPECT_GT(report.points.size(), 10u);  // real matrix, not a stub
  EXPECT_GT(report.mutations, 4u);
  for (const CrashPointResult& p : report.points) {
    EXPECT_TRUE(p.ok) << report.server << " crash op " << p.crash_op << ": "
                      << p.detail;
  }
}

CrashTestOptions in_process(const std::string& server) {
  CrashTestOptions options;
  options.server = server;
  options.workers = 0;  // in-process: keep ctest runs fork-free and fast
  return options;
}

TEST(CrashHarnessTest, MinikvHoldsInvariantsAtEveryPoint) {
  expect_all_points_ok(run_crash_test(in_process("minikv")));
}

TEST(CrashHarnessTest, MinipgHoldsInvariantsAtEveryPoint) {
  expect_all_points_ok(run_crash_test(in_process("minipg")));
}

TEST(CrashHarnessTest, MinikvSurvivesTornWrites) {
  CrashTestOptions options = in_process("minikv");
  options.torn_tail_bytes = 5;
  expect_all_points_ok(run_crash_test(options));
  options.torn_bit_flip = true;
  expect_all_points_ok(run_crash_test(options));
}

TEST(CrashHarnessTest, MinipgSurvivesTornWrites) {
  CrashTestOptions options = in_process("minipg");
  options.torn_tail_bytes = 5;
  options.torn_bit_flip = true;
  expect_all_points_ok(run_crash_test(options));
}

TEST(CrashHarnessTest, GroupCommitHoldsInvariantsAtEveryPoint) {
  // Policy "batch" + group commit: acks defer behind a group barrier, so
  // the acked-durable invariant now depends on the ack queue never letting
  // a reply overtake its barrier — clean and torn alike.
  for (const char* server : {"minikv", "minipg"}) {
    CrashTestOptions options = in_process(server);
    options.policy = FsyncPolicy::kBatch;
    options.group_commit_max = 8;
    expect_all_points_ok(run_crash_test(options));
    options.torn_tail_bytes = 5;
    options.torn_bit_flip = true;
    expect_all_points_ok(run_crash_test(options));
  }
}

TEST(CrashHarnessTest, ForkedWorkersMatchInProcess) {
  CrashTestOptions options;
  options.server = "minikv";
  options.workers = 4;
  const CrashTestReport forked = run_crash_test(options);
  options.workers = 0;
  const CrashTestReport inproc = run_crash_test(options);
  ASSERT_EQ(forked.points.size(), inproc.points.size());
  for (std::size_t i = 0; i < forked.points.size(); ++i) {
    EXPECT_EQ(forked.points[i].ok, inproc.points[i].ok);
    EXPECT_EQ(forked.points[i].acked_prefix, inproc.points[i].acked_prefix);
    EXPECT_EQ(forked.points[i].recovered_prefix,
              inproc.points[i].recovered_prefix);
  }
}

TEST(CrashHarnessTest, ResultJsonlRoundTrips) {
  CrashTestOptions options;
  options.server = "minipg";
  options.torn_tail_bytes = 3;
  CrashPointResult r;
  r.crash_op = 17;
  r.acked_prefix = 4;
  r.recovered_prefix = 5;
  r.replayed = 5;
  r.torn_bytes = 2;
  r.acked_durable = true;
  r.prefix_consistent = true;
  r.replay_idempotent = true;
  r.ok = true;
  r.detail = "quote \" and backslash \\";
  const std::string line = result_jsonl(options, r);
  CrashPointResult back;
  std::string error;
  ASSERT_TRUE(result_from_jsonl(line, &back, &error)) << error;
  EXPECT_EQ(back.crash_op, 17u);
  EXPECT_EQ(back.acked_prefix, 4u);
  EXPECT_EQ(back.recovered_prefix, 5);
  EXPECT_EQ(back.replayed, 5u);
  EXPECT_EQ(back.torn_bytes, 2u);
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.detail, r.detail);
}

TEST(CrashHarnessTest, UnknownServerReportsFailure) {
  CrashTestOptions options;
  options.server = "minichaos";
  const CrashTestReport report = run_crash_test(options);
  EXPECT_FALSE(report.passed);
  ASSERT_EQ(report.points.size(), 1u);
  EXPECT_NE(report.points[0].detail.find("unknown server"),
            std::string::npos);
}

}  // namespace
}  // namespace fir::crashtest
