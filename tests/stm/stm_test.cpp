#include <gtest/gtest.h>

#include <cstring>

#include "stm/stm.h"

namespace fir {
namespace {

TEST(StmTest, CommitKeepsStores) {
  StmContext stm;
  int x = 1;
  stm.begin();
  ASSERT_TRUE(stm.record_store(&x, sizeof(x)));
  x = 2;
  stm.commit();
  EXPECT_EQ(x, 2);
  EXPECT_EQ(stm.stats().committed, 1u);
}

TEST(StmTest, RollbackRestoresExactBytes) {
  StmContext stm;
  char buf[8] = "abcdefg";
  stm.begin();
  stm.record_store(buf + 2, 3);
  std::memcpy(buf + 2, "XYZ", 3);
  buf[0] = 'Q';  // untracked: NOT restored (word-granular undo, not lines)
  stm.rollback();
  EXPECT_EQ(buf[2], 'c');
  EXPECT_EQ(buf[3], 'd');
  EXPECT_EQ(buf[4], 'e');
  EXPECT_EQ(buf[0], 'Q');
  EXPECT_EQ(stm.stats().rolled_back, 1u);
}

TEST(StmTest, NeverRejectsStores) {
  StmContext stm;
  stm.begin();
  std::vector<char> big(1 << 20);
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(stm.record_store(big.data() + i * 1000, 512));
  stm.commit();
}

TEST(StmTest, LogStatsAccumulate) {
  StmContext stm;
  int x = 0;
  stm.begin();
  stm.record_store(&x, sizeof(x));
  stm.record_store(&x, sizeof(x));
  EXPECT_EQ(stm.log_entries(), 2u);
  EXPECT_EQ(stm.log_bytes(), 2 * sizeof(x));
  stm.commit();
  EXPECT_EQ(stm.stats().stores, 2u);
  EXPECT_EQ(stm.stats().bytes_logged, 2 * sizeof(x));
}

TEST(StmTest, PeakFootprintIsSticky) {
  StmContext stm;
  std::vector<char> buf(32 * 1024);
  stm.begin();
  stm.record_store(buf.data(), buf.size());
  stm.commit();
  const std::size_t peak = stm.stats().peak_log_bytes;
  EXPECT_GE(peak, buf.size());
  stm.begin();
  int x = 0;
  stm.record_store(&x, sizeof(x));
  stm.commit();
  EXPECT_EQ(stm.stats().peak_log_bytes, peak);
}

TEST(StmTest, ReuseAfterRollback) {
  StmContext stm;
  int x = 1;
  stm.begin();
  stm.record_store(&x, sizeof(x));
  x = 2;
  stm.rollback();
  stm.begin();
  stm.record_store(&x, sizeof(x));
  x = 3;
  stm.commit();
  EXPECT_EQ(x, 3);
}

}  // namespace
}  // namespace fir
