#include <gtest/gtest.h>

#include <cstring>

#include "stm/stm.h"

namespace fir {
namespace {

TEST(StmTest, CommitKeepsStores) {
  StmContext stm;
  int x = 1;
  stm.begin();
  ASSERT_TRUE(stm.record_store(&x, sizeof(x)));
  x = 2;
  stm.commit();
  EXPECT_EQ(x, 2);
  EXPECT_EQ(stm.stats().committed, 1u);
}

TEST(StmTest, RollbackRestoresExactBytes) {
  StmContext stm;
  char buf[8] = "abcdefg";
  stm.begin();
  stm.record_store(buf + 2, 3);
  std::memcpy(buf + 2, "XYZ", 3);
  buf[0] = 'Q';  // untracked: NOT restored (word-granular undo, not lines)
  stm.rollback();
  EXPECT_EQ(buf[2], 'c');
  EXPECT_EQ(buf[3], 'd');
  EXPECT_EQ(buf[4], 'e');
  EXPECT_EQ(buf[0], 'Q');
  EXPECT_EQ(stm.stats().rolled_back, 1u);
}

TEST(StmTest, NeverRejectsStores) {
  StmContext stm;
  stm.begin();
  std::vector<char> big(1 << 20);
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(stm.record_store(big.data() + i * 1000, 512));
  stm.commit();
}

TEST(StmTest, LogStatsAccumulate) {
  StmContext stm;
  int x = 0;
  stm.begin();
  stm.record_store(&x, sizeof(x));
  stm.record_store(&x, sizeof(x));  // covered: elided, not re-logged
  EXPECT_EQ(stm.log_entries(), 1u);
  EXPECT_EQ(stm.log_bytes(), sizeof(x));
  stm.commit();
  EXPECT_EQ(stm.stats().stores, 2u);
  EXPECT_EQ(stm.stats().stores_elided, 1u);
  EXPECT_EQ(stm.stats().filter_hits, 1u);
  EXPECT_EQ(stm.stats().bytes_logged, sizeof(x));
}

TEST(StmTest, PeakFootprintIsSticky) {
  StmContext stm;
  std::vector<char> buf(32 * 1024);
  stm.begin();
  stm.record_store(buf.data(), buf.size());
  stm.commit();
  const std::size_t peak = stm.stats().peak_log_bytes;
  EXPECT_GE(peak, buf.size());
  stm.begin();
  int x = 0;
  stm.record_store(&x, sizeof(x));
  stm.commit();
  EXPECT_EQ(stm.stats().peak_log_bytes, peak);
}

// --- first-write filter correctness -----------------------------------------

TEST(StmFilterTest, RepeatedStoresToSameWordRestoreFirstValue) {
  StmContext stm;
  std::uint64_t word = 111;
  stm.begin();
  for (int i = 0; i < 1000; ++i) {
    stm.record_store(&word, sizeof(word));
    word = static_cast<std::uint64_t>(i);
  }
  EXPECT_EQ(stm.log_entries(), 1u);  // only the first store logged
  EXPECT_EQ(stm.stats().stores_elided, 999u);
  stm.rollback();
  EXPECT_EQ(word, 111u);
}

TEST(StmFilterTest, OverlappingStoresOfDifferentSizesAcrossLines) {
  StmContext stm;
  // 4 cache lines, deliberately misaligned offsets so stores straddle
  // line boundaries in every combination.
  alignas(kCacheLineBytes) std::uint8_t buf[4 * kCacheLineBytes];
  for (std::size_t i = 0; i < sizeof(buf); ++i)
    buf[i] = static_cast<std::uint8_t>(i * 7 + 1);
  std::uint8_t original[sizeof(buf)];
  std::memcpy(original, buf, sizeof(buf));

  stm.begin();
  struct Span {
    std::size_t at, size;
  };
  const Span spans[] = {
      {10, 8},                        // inside line 0
      {10, 8},                        // exact repeat: elided
      {12, 4},                        // sub-range of covered bytes: elided
      {8, 16},                        // widens coverage left and right
      {kCacheLineBytes - 4, 8},       // straddles line 0/1
      {kCacheLineBytes - 4, 8},       // repeat of the straddle: elided
      {0, 3 * kCacheLineBytes},       // bulk store spanning lines 0..2
      {2 * kCacheLineBytes + 5, 40},  // inside bulk coverage: elided
      {3 * kCacheLineBytes + 1, 62},  // line 3, first touch
  };
  for (const Span& s : spans) {
    stm.record_store(buf + s.at, s.size);
    std::memset(buf + s.at, 0xEE, s.size);
  }
  stm.rollback();
  EXPECT_EQ(std::memcmp(buf, original, sizeof(buf)), 0);
}

TEST(StmFilterTest, StoreRollbackRestoreAcrossRetryCycles) {
  // Models the gate's retry loop: every re-execution re-dirties the same
  // state and must re-log it (the filter resets per transaction).
  StmContext stm;
  std::uint64_t state[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int retry = 0; retry < 5; ++retry) {
    stm.begin();
    for (int rep = 0; rep < 3; ++rep) {
      for (std::size_t i = 0; i < 8; ++i) {
        stm.record_store(&state[i], sizeof(state[i]));
        state[i] = 0xDEAD0000 + static_cast<std::uint64_t>(retry * 100 + rep);
      }
    }
    stm.rollback();
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(state[i], i + 1);
  }
  // Committed changes then survive.
  stm.begin();
  stm.record_store(&state[0], sizeof(state[0]));
  state[0] = 42;
  stm.commit();
  EXPECT_EQ(state[0], 42u);
}

TEST(StmFilterTest, DisabledFilterLogsEveryStore) {
  StmContext stm;
  stm.set_filter_enabled(false);
  std::uint64_t word = 5;
  stm.begin();
  stm.record_store(&word, sizeof(word));
  word = 6;
  stm.record_store(&word, sizeof(word));
  word = 7;
  EXPECT_EQ(stm.log_entries(), 2u);
  EXPECT_EQ(stm.stats().stores_elided, 0u);
  stm.rollback();
  EXPECT_EQ(word, 5u);  // oldest entry still wins on the reverse walk
}

TEST(StmFilterTest, GateFastPathElidesCoveredStores) {
  StmContext stm;
  stm.begin();
  stm.bind_gate();
  std::uint64_t word = 77;
  for (int i = 0; i < 100; ++i) {
    StoreGate::record(&word, sizeof(word));
    word = static_cast<std::uint64_t>(i);
  }
  StoreGate::set_recorder(nullptr);
  EXPECT_EQ(stm.log_entries(), 1u);
  const StmStats s = stm.stats();
  EXPECT_EQ(s.stores, 100u);
  EXPECT_EQ(s.stores_elided, 99u);
  stm.rollback();
  EXPECT_EQ(word, 77u);
}

TEST(StmFilterTest, RetentionCapShrinksFootprintAfterOutlier) {
  StmContext stm;
  stm.set_retention(64 * 1024);
  std::vector<std::uint8_t> huge(4 << 20);
  stm.begin();
  // Scatter across many lines so both the log arena and the filter grow.
  for (std::size_t at = 0; at + 64 <= huge.size(); at += 64)
    stm.record_store(huge.data() + at, 64);
  const std::size_t peak = stm.footprint_bytes();
  EXPECT_GT(peak, 4u << 20);
  stm.commit();
  EXPECT_LE(stm.footprint_bytes(), 128u * 1024);
  EXPECT_EQ(stm.stats().peak_log_bytes, peak);  // Fig. 9 still sees the peak

  // The shrunken engine is fully functional.
  std::uint64_t word = 9;
  stm.begin();
  stm.record_store(&word, sizeof(word));
  word = 10;
  stm.rollback();
  EXPECT_EQ(word, 9u);
}

TEST(StmTest, ReuseAfterRollback) {
  StmContext stm;
  int x = 1;
  stm.begin();
  stm.record_store(&x, sizeof(x));
  x = 2;
  stm.rollback();
  stm.begin();
  stm.record_store(&x, sizeof(x));
  x = 3;
  stm.commit();
  EXPECT_EQ(x, 3);
}

}  // namespace
}  // namespace fir
