#include <gtest/gtest.h>

#include "apps/minikv.h"
#include "workload/campaign.h"

namespace fir {
namespace {

ServerFactory kv_factory() {
  return [] {
    TxManagerConfig config;
    config.policy.kind = PolicyKind::kStmOnly;
    auto server = std::make_unique<Minikv>(config);
    EXPECT_TRUE(server->start(0).is_ok());
    return std::unique_ptr<Server>(std::move(server));
  };
}

TEST(CampaignTest, AggregationCountsOutcomes) {
  CampaignResult result;
  ExperimentRecord recovered;
  recovered.triggered = recovered.crashed = recovered.recovered = true;
  ExperimentRecord fatal;
  fatal.triggered = fatal.crashed = fatal.fatal = true;
  ExperimentRecord untouched;
  result.experiments = {recovered, fatal, untouched};
  EXPECT_EQ(result.injected(), 3);
  EXPECT_EQ(result.triggered(), 2);
  EXPECT_EQ(result.crashes(), 2);
  EXPECT_EQ(result.recovered(), 1);
  EXPECT_EQ(result.fatal(), 1);
}

TEST(CampaignTest, ProfileMarkersExcludesCriticalAndHandlers) {
  const auto targets = profile_markers(kv_factory());
  EXPECT_FALSE(targets.empty());
  for (const Marker& m : targets) {
    EXPECT_FALSE(m.critical_path) << m.name;
    EXPECT_FALSE(m.error_handler) << m.name;
    EXPECT_GT(m.executions, 0u) << m.name;
  }
}

TEST(CampaignTest, ProfileMarkersCanIncludeEverything) {
  const auto all = profile_markers(kv_factory(), 1, false);
  const auto targets = profile_markers(kv_factory(), 1, true);
  EXPECT_GT(all.size(), targets.size());
}

TEST(CampaignTest, PersistentCampaignRecoversOnKv) {
  const CampaignResult result =
      run_campaign(kv_factory(), FaultType::kPersistentCrash);
  ASSERT_GT(result.injected(), 3);
  EXPECT_EQ(result.triggered(), result.injected());
  EXPECT_EQ(result.recovered(), result.crashes());  // Redis row: all recover
  for (const ExperimentRecord& e : result.experiments) {
    EXPECT_GE(e.diversions + e.retries, 1u) << e.marker_name;
  }
}

TEST(CampaignTest, ExperimentRecordsCarryMarkerIdentity) {
  const CampaignResult result =
      run_campaign(kv_factory(), FaultType::kTransientCrash);
  for (const ExperimentRecord& e : result.experiments) {
    EXPECT_FALSE(e.marker_name.empty());
    EXPECT_NE(e.marker_location.find("minikv.cpp"), std::string::npos);
    EXPECT_EQ(e.fault, FaultType::kTransientCrash);
  }
}

}  // namespace
}  // namespace fir
