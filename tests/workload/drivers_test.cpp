// Workload-driver unit coverage: suite composition, result arithmetic,
// and the per-server dispatch.
#include <gtest/gtest.h>

#include "apps/miniginx.h"
#include "workload/drivers.h"

namespace fir {
namespace {

TEST(WorkloadResultTest, Arithmetic) {
  WorkloadResult result;
  result.responses_2xx = 10;
  result.responses_4xx = 3;
  result.responses_5xx = 2;
  result.wall_seconds = 5.0;
  EXPECT_EQ(result.responses_total(), 15u);
  EXPECT_DOUBLE_EQ(result.throughput_rps(), 3.0);
  result.wall_seconds = 0.0;
  EXPECT_DOUBLE_EQ(result.throughput_rps(), 0.0);
}

TEST(SuiteTest, EveryServerHasErrorProbesAndFeatureProbes) {
  for (const char* name : {"miniginx", "apachette", "littlehttpd"}) {
    const auto suite = standard_http_suite(name);
    EXPECT_GE(suite.size(), 10u) << name;
    bool has_404 = false, has_traversal = false, has_get = false;
    for (const auto& spec : suite) {
      if (spec.target.find("no/such") != std::string::npos) has_404 = true;
      if (spec.target.find("..") != std::string::npos) has_traversal = true;
      if (spec.method == "GET") has_get = true;
    }
    EXPECT_TRUE(has_404 && has_traversal && has_get) << name;
  }
}

TEST(SuiteTest, ServerSpecificProbesPresent) {
  auto has_target = [](const std::vector<HttpRequestSpec>& suite,
                       std::string_view needle) {
    for (const auto& spec : suite)
      if (spec.target.find(needle) != std::string::npos ||
          spec.method.find(needle) != std::string::npos)
        return true;
    return false;
  };
  EXPECT_TRUE(has_target(standard_http_suite("miniginx"), ".shtml"));
  EXPECT_TRUE(has_target(standard_http_suite("apachette"), "cgi="));
  EXPECT_TRUE(has_target(standard_http_suite("apachette"), "server-status"));
  EXPECT_TRUE(has_target(standard_http_suite("littlehttpd"), "PROPFIND"));
  EXPECT_TRUE(has_target(standard_http_suite("littlehttpd"), "MKCOL"));
}

TEST(SuiteTest, RangeProbeCarriesExtraHeader) {
  bool found = false;
  for (const auto& spec : standard_http_suite("miniginx")) {
    if (spec.extra_headers.find("Range:") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DispatchTest, RunSuiteForRoutesByName) {
  TxManagerConfig config;
  config.policy.kind = PolicyKind::kUnprotected;
  Miniginx server(config);
  ASSERT_TRUE(server.start(0).is_ok());
  const WorkloadResult result = run_suite_for(server, 1);
  EXPECT_GT(result.responses_2xx, 0u);
  EXPECT_FALSE(result.server_died);
}

}  // namespace
}  // namespace fir
