// Workload-client framing tests against raw virtual sockets.
#include <gtest/gtest.h>

#include "env/env.h"
#include "workload/http_client.h"
#include "workload/kv_client.h"
#include "workload/pg_client.h"

namespace fir {
namespace {

struct FakeServer {
  Env env;
  int listener = -1;
  int conn = -1;

  explicit FakeServer(std::uint16_t port) {
    listener = env.socket();
    env.bind(listener, port);
    env.listen(listener, 4);
  }
  void accept_one() { conn = env.accept(listener); }
  void push(std::string_view bytes) {
    env.send(conn, bytes.data(), bytes.size());
  }
};

TEST(HttpClientTest, ParsesResponseWithBody) {
  FakeServer server(7100);
  HttpClient client(server.env, 7100);
  ASSERT_TRUE(client.connect());
  server.accept_one();
  ASSERT_TRUE(client.send_request("GET", "/x"));
  char buf[256];
  ASSERT_GT(server.env.recv(server.conn, buf, sizeof(buf)), 0);
  EXPECT_NE(std::string_view(buf).find("GET /x HTTP/1.1"),
            std::string_view::npos);

  server.push("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello");
  HttpClient::Response response;
  ASSERT_EQ(client.try_read_response(response), 1);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "hello");
}

TEST(HttpClientTest, IncompleteThenComplete) {
  FakeServer server(7101);
  HttpClient client(server.env, 7101);
  ASSERT_TRUE(client.connect());
  server.accept_one();
  server.push("HTTP/1.1 404 Not Found\r\nContent-Le");
  HttpClient::Response response;
  EXPECT_EQ(client.try_read_response(response), 0);
  server.push("ngth: 2\r\n\r\nno");
  ASSERT_EQ(client.try_read_response(response), 1);
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(response.body, "no");
}

TEST(HttpClientTest, PipelinedResponsesSplitCorrectly) {
  FakeServer server(7102);
  HttpClient client(server.env, 7102);
  ASSERT_TRUE(client.connect());
  server.accept_one();
  server.push(
      "HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nA"
      "HTTP/1.1 500 Oops\r\nContent-Length: 0\r\n\r\n");
  HttpClient::Response r1, r2;
  ASSERT_EQ(client.try_read_response(r1), 1);
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r1.body, "A");
  ASSERT_EQ(client.try_read_response(r2), 1);
  EXPECT_EQ(r2.status, 500);
}

TEST(HttpClientTest, ConnectionGoneReturnsMinusOne) {
  FakeServer server(7103);
  HttpClient client(server.env, 7103);
  ASSERT_TRUE(client.connect());
  server.accept_one();
  server.env.close(server.conn);
  HttpClient::Response response;
  EXPECT_EQ(client.try_read_response(response), -1);
}

TEST(KvClientTest, SimpleAndBulkReplies) {
  FakeServer server(7104);
  KvClient client(server.env, 7104);
  ASSERT_TRUE(client.connect());
  server.accept_one();
  ASSERT_TRUE(client.send_command("GET k"));

  std::string reply;
  server.push("+OK\r\n");
  ASSERT_EQ(client.try_read_reply(reply), 1);
  EXPECT_EQ(reply, "+OK");

  server.push("$5\r\nvalue\r\n");
  ASSERT_EQ(client.try_read_reply(reply), 1);
  EXPECT_EQ(reply, "value");

  server.push("$-1\r\n");
  ASSERT_EQ(client.try_read_reply(reply), 1);
  EXPECT_EQ(reply, "$-1");
}

TEST(KvClientTest, ArrayReplyCollected) {
  FakeServer server(7105);
  KvClient client(server.env, 7105);
  ASSERT_TRUE(client.connect());
  server.accept_one();
  server.push("*2\r\n$1\r\na\r\n$2\r\nbb\r\n");
  std::string reply;
  ASSERT_EQ(client.try_read_reply(reply), 1);
  EXPECT_EQ(reply, "a bb");
}

TEST(KvClientTest, PartialBulkWaits) {
  FakeServer server(7106);
  KvClient client(server.env, 7106);
  ASSERT_TRUE(client.connect());
  server.accept_one();
  server.push("$10\r\nhalf");
  std::string reply;
  EXPECT_EQ(client.try_read_reply(reply), 0);
  server.push("otherx\r\n");
  ASSERT_EQ(client.try_read_reply(reply), 1);
  EXPECT_EQ(reply, "halfotherx");
}

TEST(PgClientTest, StatusAndRowReplies) {
  FakeServer server(7107);
  PgClient client(server.env, 7107);
  ASSERT_TRUE(client.connect());
  server.accept_one();

  std::string reply;
  server.push("INSERT 0 1\n");
  ASSERT_EQ(client.try_read_result(reply), 1);
  EXPECT_EQ(reply, "INSERT 0 1");

  server.push("some-value\n(1 row)\n");
  ASSERT_EQ(client.try_read_result(reply), 1);
  EXPECT_EQ(reply, "some-value\n(1 row)");

  server.push("(0 rows)\n");
  ASSERT_EQ(client.try_read_result(reply), 1);
  EXPECT_EQ(reply, "(0 rows)");
}

TEST(PgClientTest, RowWaitsForTrailer) {
  FakeServer server(7108);
  PgClient client(server.env, 7108);
  ASSERT_TRUE(client.connect());
  server.accept_one();
  server.push("value-line\n");
  std::string reply;
  EXPECT_EQ(client.try_read_result(reply), 0);
  server.push("(1 row)\n");
  ASSERT_EQ(client.try_read_result(reply), 1);
}

}  // namespace
}  // namespace fir
