// Compensation-action unit tests: each builder must exactly revert its
// library call class.
#include <gtest/gtest.h>

#include <cstring>

#include "env/env.h"
#include "interpose/comp.h"

namespace fir {
namespace {

void run(const Compensation& c, Env& env, std::intptr_t rv,
         const std::uint8_t* data = nullptr, std::size_t len = 0) {
  c.fn(env, c.a, c.b, rv, data, len);
}

TEST(CompTest, CloseReturnedFdClosesOnSuccessOnly) {
  Env env;
  const int fd = env.socket();
  run(comp::close_returned_fd(), env, fd);
  EXPECT_FALSE(env.fd_valid(fd));
  run(comp::close_returned_fd(), env, -1);  // failed call: nothing to do
}

TEST(CompTest, UnbindFreesPort) {
  Env env;
  const int fd = env.socket();
  ASSERT_EQ(env.bind(fd, 7001), 0);
  run(comp::unbind(fd), env, 0);
  const int other = env.socket();
  EXPECT_EQ(env.bind(other, 7001), 0);
}

TEST(CompTest, UnbindSkipsFailedCall) {
  Env env;
  const int fd = env.socket();
  ASSERT_EQ(env.bind(fd, 7002), 0);
  run(comp::unbind(fd), env, -1);  // the bind "failed": keep binding
  const int other = env.socket();
  EXPECT_EQ(env.bind(other, 7002), -1);
}

TEST(CompTest, UnlistenRevertsToBoundSocket) {
  Env env;
  const int fd = env.socket();
  ASSERT_EQ(env.bind(fd, 7003), 0);
  ASSERT_EQ(env.listen(fd, 4), 0);
  run(comp::unlisten(fd), env, 0);
  EXPECT_EQ(env.connect_to(7003), -1);  // no listener anymore
  EXPECT_EQ(env.listen(fd, 4), 0);      // still bound: can re-listen
}

TEST(CompTest, FreeReturnedBlockReleasesHeap) {
  Env env;
  void* p = env.mem_alloc(64);
  run(comp::free_returned_block(), env,
      reinterpret_cast<std::intptr_t>(p));
  EXPECT_EQ(env.stats().heap_bytes, 0u);
  run(comp::free_returned_block(), env, 0);  // NULL: no-op
}

TEST(CompTest, RestoreRecvUnreadsAndRestoresBuffer) {
  Env env;
  const int ls = env.socket();
  env.bind(ls, 7004);
  env.listen(ls, 4);
  const int client = env.connect_to(7004);
  const int conn = env.accept(ls);
  env.send(client, "data", 4);

  char buf[8];
  std::memset(buf, 'o', sizeof(buf));
  const std::uint8_t old_bytes[8] = {'o', 'o', 'o', 'o', 'o', 'o', 'o', 'o'};
  ASSERT_EQ(env.recv(conn, buf, sizeof(buf)), 4);
  ASSERT_EQ(std::string_view(buf, 4), "data");

  run(comp::restore_recv(conn, buf, 0, 8), env, 4, old_bytes, 8);
  EXPECT_EQ(buf[0], 'o');  // buffer restored
  char again[8];
  EXPECT_EQ(env.recv(conn, again, sizeof(again)), 4);  // stream restored
  EXPECT_EQ(std::string_view(again, 4), "data");
}

TEST(CompTest, RestoreBufferCopiesStash) {
  Env env;
  char buf[4] = {'n', 'e', 'w', '!'};
  const std::uint8_t stash[4] = {'o', 'l', 'd', '.'};
  run(comp::restore_buffer(buf, 0, 4), env, 4, stash, 4);
  EXPECT_EQ(std::string_view(buf, 4), "old.");
}

TEST(CompTest, RestoreOffsetSeeksBack) {
  Env env;
  env.vfs().put_file("/f", "0123456789");
  const int fd = env.open("/f", kRdOnly);
  env.lseek(fd, 7, kSeekSet);
  run(comp::restore_offset(fd, 2), env, 7);
  EXPECT_EQ(env.file_offset(fd), 2);
}

TEST(CompTest, RenameBackRestoresName) {
  Env env;
  env.vfs().put_file("/a", "x");
  ASSERT_EQ(env.rename("/a", "/b"), 0);
  // Stash layout the FIR_RENAME wrapper produces: "from\0to\0".
  const std::uint8_t stash[6] = {'/', 'a', '\0', '/', 'b', '\0'};
  run(comp::rename_back(0, 6, 3), env, 0, stash, 6);
  EXPECT_TRUE(env.vfs().exists("/a"));
  EXPECT_FALSE(env.vfs().exists("/b"));
}

TEST(CompTest, RestoreTruncateRewritesTail) {
  Env env;
  env.vfs().put_file("/f", "abcdefgh");
  const int fd = env.open("/f", kRdWr);
  ASSERT_EQ(env.ftruncate(fd, 3), 0);
  const std::uint8_t tail[5] = {'d', 'e', 'f', 'g', 'h'};
  run(comp::restore_truncate(fd, 8, 0, 5), env, 0, tail, 5);
  std::size_t size = 0;
  env.fstat_size(fd, &size);
  EXPECT_EQ(size, 8u);
  char buf[8];
  env.pread(fd, buf, 8, 0);
  EXPECT_EQ(std::string_view(buf, 8), "abcdefgh");
}

TEST(CompTest, DeferredOpsApplyEffects) {
  Env env;
  const int fd = env.socket();
  const DeferredOp close_op = comp::deferred_close(fd);
  close_op.fn(env, close_op);
  EXPECT_FALSE(env.fd_valid(fd));

  void* p = env.mem_alloc(16);
  const DeferredOp free_op = comp::deferred_free(p);
  free_op.fn(env, free_op);
  EXPECT_EQ(env.stats().heap_bytes, 0u);

  env.vfs().put_file("/gone", "x");
  const DeferredOp unlink_op = comp::deferred_unlink("/gone");
  unlink_op.fn(env, unlink_op);
  EXPECT_FALSE(env.vfs().exists("/gone"));
}

TEST(CompTest, DeferredUnlinkOwnsThePath) {
  // The op must survive the caller's buffer being reused before commit
  // (the deferred_unlink lifetime footgun).
  Env env;
  env.vfs().put_file("/victim", "x");
  char pathbuf[16];
  std::strcpy(pathbuf, "/victim");
  const DeferredOp op = comp::deferred_unlink(pathbuf);
  std::strcpy(pathbuf, "/clobbered");  // caller reuses the buffer
  op.fn(env, op);
  EXPECT_FALSE(env.vfs().exists("/victim"));
}

}  // namespace
}  // namespace fir
