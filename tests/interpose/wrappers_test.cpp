// Gate behaviour of the descriptor / vector wrappers, incl. divert paths.
#include <gtest/gtest.h>

#include "interpose/fir.h"

namespace fir {
namespace {

TxManagerConfig stm_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

TEST(WrapperTest, DupDivertClosesTheCopy) {
  Fx fx(stm_cfg());
  fx.env().vfs().put_file("/f", "data");
  const int fd = fx.env().open("/f", kRdOnly);
  FIR_ANCHOR(fx);
  const int copy = FIR_DUP(fx, fd);
  if (copy >= 0) raise_crash(CrashKind::kSegv);  // persistent
  EXPECT_EQ(copy, -1);
  EXPECT_EQ(fx.err(), EMFILE);
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.env().open_fd_count(), 1u);  // only the original remains
}

TEST(WrapperTest, PipeDivertClosesBothEnds) {
  Fx fx(stm_cfg());
  FIR_ANCHOR(fx);
  int p[2] = {-1, -1};
  const int rc = static_cast<int>(FIR_PIPE(fx, p));
  if (rc == 0) raise_crash(CrashKind::kSegv);  // persistent
  EXPECT_EQ(rc, -1);
  EXPECT_EQ(fx.err(), EMFILE);
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.env().open_fd_count(), 0u);
}

TEST(WrapperTest, SocketpairSurvivesTransientCrash) {
  Fx fx(stm_cfg());
  FIR_ANCHOR(fx);
  static int budget;
  budget = 1;
  int sp[2] = {-1, -1};
  const int rc = static_cast<int>(FIR_SOCKETPAIR(fx, sp));
  if (budget > 0) {
    --budget;
    raise_crash(CrashKind::kSegv);
  }
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(fx.env().fd_valid(sp[0]));
  EXPECT_TRUE(fx.env().fd_valid(sp[1]));
  FIR_QUIESCE(fx);
}

TEST(WrapperTest, SendfileIsRetryOnlyAndFatalWhenPersistent) {
  Fx fx(stm_cfg());
  fx.env().vfs().put_file("/f", "content");
  const int file = fx.env().open("/f", kRdOnly);
  int sp[2];
  ASSERT_EQ(fx.env().socketpair(sp), 0);
  FIR_ANCHOR(fx);
  EXPECT_THROW(
      {
        const ssize_t n = FIR_SENDFILE(fx, sp[0], file, 0, 7);
        if (n == 7) raise_crash(CrashKind::kSegv);  // persistent
      },
      FatalCrashError);
}

TEST(WrapperTest, WritevDivertIsImpossibleButRetryWorks) {
  Fx fx(stm_cfg());
  const int fd = fx.env().open("/log", kCreat | kWrOnly);
  FIR_ANCHOR(fx);
  static int budget;
  budget = 1;
  const Env::IoSlice slices[] = {{"entry\n", 6}};
  const ssize_t n = FIR_WRITEV(fx, fd, slices, 1);
  if (budget > 0) {
    --budget;
    raise_crash(CrashKind::kSegv);  // transient: retry succeeds
  }
  EXPECT_EQ(n, 6);
  FIR_QUIESCE(fx);
  auto inode = fx.env().vfs().lookup("/log");
  EXPECT_EQ(inode->data.size(), 6u);  // written exactly once
}

}  // namespace
}  // namespace fir
