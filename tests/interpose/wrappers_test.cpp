// Gate behaviour of the descriptor / vector wrappers, incl. divert paths.
#include <gtest/gtest.h>

#include "interpose/fir.h"

namespace fir {
namespace {

TxManagerConfig stm_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

TEST(WrapperTest, DupDivertClosesTheCopy) {
  Fx fx(stm_cfg());
  fx.env().vfs().put_file("/f", "data");
  const int fd = fx.env().open("/f", kRdOnly);
  FIR_ANCHOR(fx);
  const int copy = FIR_DUP(fx, fd);
  if (copy >= 0) raise_crash(CrashKind::kSegv);  // persistent
  EXPECT_EQ(copy, -1);
  EXPECT_EQ(fx.err(), EMFILE);
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.env().open_fd_count(), 1u);  // only the original remains
}

TEST(WrapperTest, PipeDivertClosesBothEnds) {
  Fx fx(stm_cfg());
  FIR_ANCHOR(fx);
  int p[2] = {-1, -1};
  const int rc = static_cast<int>(FIR_PIPE(fx, p));
  if (rc == 0) raise_crash(CrashKind::kSegv);  // persistent
  EXPECT_EQ(rc, -1);
  EXPECT_EQ(fx.err(), EMFILE);
  FIR_QUIESCE(fx);
  EXPECT_EQ(fx.env().open_fd_count(), 0u);
}

TEST(WrapperTest, SocketpairSurvivesTransientCrash) {
  Fx fx(stm_cfg());
  FIR_ANCHOR(fx);
  static int budget;
  budget = 1;
  int sp[2] = {-1, -1};
  const int rc = static_cast<int>(FIR_SOCKETPAIR(fx, sp));
  if (budget > 0) {
    --budget;
    raise_crash(CrashKind::kSegv);
  }
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(fx.env().fd_valid(sp[0]));
  EXPECT_TRUE(fx.env().fd_valid(sp[1]));
  FIR_QUIESCE(fx);
}

TEST(WrapperTest, SendfileIsRetryOnlyAndFatalWhenPersistent) {
  Fx fx(stm_cfg());
  fx.env().vfs().put_file("/f", "content");
  const int file = fx.env().open("/f", kRdOnly);
  int sp[2];
  ASSERT_EQ(fx.env().socketpair(sp), 0);
  FIR_ANCHOR(fx);
  EXPECT_THROW(
      {
        const ssize_t n = FIR_SENDFILE(fx, sp[0], file, 0, 7);
        if (n == 7) raise_crash(CrashKind::kSegv);  // persistent
      },
      FatalCrashError);
}

TEST(WrapperTest, WritevDivertIsImpossibleButRetryWorks) {
  Fx fx(stm_cfg());
  const int fd = fx.env().open("/log", kCreat | kWrOnly);
  FIR_ANCHOR(fx);
  static int budget;
  budget = 1;
  const Env::IoSlice slices[] = {{"entry\n", 6}};
  const ssize_t n = FIR_WRITEV(fx, fd, slices, 1);
  if (budget > 0) {
    --budget;
    raise_crash(CrashKind::kSegv);  // transient: retry succeeds
  }
  EXPECT_EQ(n, 6);
  FIR_QUIESCE(fx);
  auto inode = fx.env().vfs().lookup("/log");
  EXPECT_EQ(inode->data.size(), 6u);  // written exactly once
}

TEST(WrapperTest, UnsyncedAppendWriteDivertsAndTruncatesBack) {
  // The durability refinement: a write whose bytes sit entirely past the
  // durable boundary is compensable (truncate to the pre-call length), so a
  // persistent crash diverts with EIO instead of killing the process.
  Fx fx(stm_cfg());
  const int fd = fx.env().open("/wal", kCreat | kWrOnly | kAppend);
  ASSERT_EQ(fx.env().write(fd, "rec1\n", 5), 5);
  ASSERT_EQ(fx.env().fsync(fd), 0);
  FIR_ANCHOR(fx);
  const ssize_t n = FIR_WRITE(fx, fd, "rec2\n", 5);
  if (n == 5) raise_crash(CrashKind::kSegv);  // persistent
  EXPECT_EQ(n, -1);
  EXPECT_EQ(fx.err(), EIO);
  FIR_QUIESCE(fx);
  auto inode = fx.env().vfs().lookup("/wal");
  EXPECT_EQ(std::string(inode->data.begin(), inode->data.end()), "rec1\n");
  EXPECT_EQ(fx.env().file_offset(fd), 5);
}

TEST(WrapperTest, DurableOverwriteStaysFatal) {
  // A pwrite into already-synced bytes cannot be compensated — the catalog's
  // irrecoverable judgment stands and the persistent crash is fatal.
  Fx fx(stm_cfg());
  const int fd = fx.env().open("/heap", kCreat | kWrOnly);
  ASSERT_EQ(fx.env().write(fd, "old!", 4), 4);
  ASSERT_EQ(fx.env().fsync(fd), 0);
  FIR_ANCHOR(fx);
  EXPECT_THROW(
      {
        const ssize_t n = FIR_PWRITE(fx, fd, "new!", 4, 0);
        if (n == 4) raise_crash(CrashKind::kSegv);  // persistent
      },
      FatalCrashError);
}

TEST(WrapperTest, UnsyncedPwriteSurvivesTransientCrash) {
  Fx fx(stm_cfg());
  const int fd = fx.env().open("/log", kCreat | kWrOnly);
  FIR_ANCHOR(fx);
  static int budget;
  budget = 1;
  const ssize_t n = FIR_PWRITE(fx, fd, "abcd", 4, 0);
  if (budget > 0) {
    --budget;
    raise_crash(CrashKind::kSegv);  // transient: retry succeeds
  }
  EXPECT_EQ(n, 4);
  FIR_QUIESCE(fx);
  auto inode = fx.env().vfs().lookup("/log");
  EXPECT_EQ(inode->data.size(), 4u);
}

TEST(WrapperTest, FsyncDirBarrierMakesRenameDurable) {
  Fx fx(stm_cfg());
  Env& env = fx.env();
  const int fd = env.open("/d/new.tmp", kCreat | kWrOnly);
  ASSERT_EQ(env.write(fd, "v2", 2), 2);
  ASSERT_EQ(env.fsync(fd), 0);
  FIR_ANCHOR(fx);
  EXPECT_EQ(FIR_RENAME(fx, "/d/new.tmp", "/d/cur"), 0);
  EXPECT_EQ(FIR_FSYNC_DIR(fx, "/d"), 0);
  FIR_QUIESCE(fx);
  auto image = env.vfs().crash_image();
  auto inode = image.lookup("/d/cur");
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(std::string(inode->data.begin(), inode->data.end()), "v2");
  EXPECT_FALSE(image.exists("/d/new.tmp"));
}

}  // namespace
}  // namespace fir
