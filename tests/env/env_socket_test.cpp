#include <gtest/gtest.h>

#include <cerrno>
#include <string>

#include "env/env.h"

namespace fir {
namespace {

struct Pair {
  int listener = -1;
  int client = -1;
  int server = -1;
};

Pair make_pair(Env& env, std::uint16_t port) {
  Pair p;
  p.listener = env.socket();
  EXPECT_EQ(env.bind(p.listener, port), 0);
  EXPECT_EQ(env.listen(p.listener, 8), 0);
  p.client = env.connect_to(port);
  EXPECT_GE(p.client, 0);
  p.server = env.accept(p.listener);
  EXPECT_GE(p.server, 0);
  return p;
}

TEST(EnvSocketTest, ConnectRefusedWithoutListener) {
  Env env;
  EXPECT_EQ(env.connect_to(4444), -1);
  EXPECT_EQ(env.last_errno(), ECONNREFUSED);
}

TEST(EnvSocketTest, BindConflictsReportAddrInUse) {
  Env env;
  const int a = env.socket();
  const int b = env.socket();
  EXPECT_EQ(env.bind(a, 5000), 0);
  EXPECT_EQ(env.bind(b, 5000), -1);
  EXPECT_EQ(env.last_errno(), EADDRINUSE);
  EXPECT_EQ(env.bind(b, 0), -1);  // port 0 invalid in this model
}

TEST(EnvSocketTest, ListenRequiresBind) {
  Env env;
  const int s = env.socket();
  EXPECT_EQ(env.listen(s, 8), -1);
  EXPECT_EQ(env.last_errno(), EINVAL);
}

TEST(EnvSocketTest, AcceptEmptyQueueIsEagain) {
  Env env;
  const int s = env.socket();
  env.bind(s, 5001);
  env.listen(s, 8);
  EXPECT_EQ(env.accept(s), -1);
  EXPECT_EQ(env.last_errno(), EAGAIN);
}

TEST(EnvSocketTest, SendRecvRoundTrip) {
  Env env;
  Pair p = make_pair(env, 5002);
  EXPECT_EQ(env.send(p.client, "ping", 4), 4);
  char buf[8] = {};
  EXPECT_EQ(env.recv(p.server, buf, sizeof(buf)), 4);
  EXPECT_EQ(std::string_view(buf, 4), "ping");
  EXPECT_EQ(env.send(p.server, "pong!", 5), 5);
  EXPECT_EQ(env.recv(p.client, buf, sizeof(buf)), 5);
}

TEST(EnvSocketTest, RecvOnEmptyIsEagainThenEofAfterClose) {
  Env env;
  Pair p = make_pair(env, 5003);
  char buf[4];
  EXPECT_EQ(env.recv(p.server, buf, sizeof(buf)), -1);
  EXPECT_EQ(env.last_errno(), EAGAIN);
  env.close(p.client);
  EXPECT_EQ(env.recv(p.server, buf, sizeof(buf)), 0);  // orderly EOF
}

TEST(EnvSocketTest, BufferedBytesReadableAfterPeerClose) {
  Env env;
  Pair p = make_pair(env, 5004);
  env.send(p.client, "tail", 4);
  env.close(p.client);
  char buf[8] = {};
  EXPECT_EQ(env.recv(p.server, buf, sizeof(buf)), 4);
  EXPECT_EQ(env.recv(p.server, buf, sizeof(buf)), 0);
}

TEST(EnvSocketTest, SendAfterPeerGoneIsEpipe) {
  Env env;
  Pair p = make_pair(env, 5005);
  env.close(p.server);
  EXPECT_EQ(env.send(p.client, "x", 1), -1);
  EXPECT_EQ(env.last_errno(), EPIPE);
}

TEST(EnvSocketTest, BackpressureReturnsEagain) {
  Env env;
  Pair p = make_pair(env, 5006);
  std::string chunk(64 * 1024, 'x');
  ssize_t total = 0;
  for (;;) {
    const ssize_t w = env.send(p.client, chunk.data(), chunk.size());
    if (w < 0) {
      EXPECT_EQ(env.last_errno(), EAGAIN);
      break;
    }
    total += w;
  }
  EXPECT_EQ(total, static_cast<ssize_t>(SocketEndpoint::kRxCapacity));
}

TEST(EnvSocketTest, UnreadRestoresStreamOrder) {
  Env env;
  Pair p = make_pair(env, 5007);
  env.send(p.client, "abcdef", 6);
  char buf[4] = {};
  EXPECT_EQ(env.recv(p.server, buf, 3), 3);  // "abc"
  EXPECT_EQ(env.sock_unread(p.server, buf, 3), 0);
  char all[8] = {};
  EXPECT_EQ(env.recv(p.server, all, sizeof(all)), 6);
  EXPECT_EQ(std::string_view(all, 6), "abcdef");
}

TEST(EnvSocketTest, ShutdownWrSignalsPeerEof) {
  Env env;
  Pair p = make_pair(env, 5008);
  EXPECT_EQ(env.shutdown_wr(p.client), 0);
  char buf[4];
  EXPECT_EQ(env.recv(p.server, buf, sizeof(buf)), 0);
  EXPECT_EQ(env.send(p.client, "x", 1), -1);
  EXPECT_EQ(env.last_errno(), EPIPE);
}

TEST(EnvSocketTest, UnbindAndUnlistenCompensations) {
  Env env;
  const int s = env.socket();
  EXPECT_EQ(env.bind(s, 5009), 0);
  EXPECT_EQ(env.unbind(s), 0);
  const int s2 = env.socket();
  EXPECT_EQ(env.bind(s2, 5009), 0);  // port free again

  EXPECT_EQ(env.listen(s2, 4), 0);
  const int c = env.connect_to(5009);
  ASSERT_GE(c, 0);
  EXPECT_EQ(env.unlisten(s2), 0);
  // Pending connection was reset; port can be listened on again.
  EXPECT_EQ(env.listen(s2, 4), 0);
  char buf[1];
  EXPECT_EQ(env.recv(c, buf, 1), -1);
  EXPECT_EQ(env.last_errno(), ECONNRESET);
}

TEST(EnvSocketTest, BacklogLimitRefusesConnections) {
  Env env;
  const int s = env.socket();
  env.bind(s, 5010);
  env.listen(s, 2);
  EXPECT_GE(env.connect_to(5010), 0);
  EXPECT_GE(env.connect_to(5010), 0);
  EXPECT_EQ(env.connect_to(5010), -1);
  EXPECT_EQ(env.last_errno(), ECONNREFUSED);
}

// --- SO_REUSEPORT model ------------------------------------------------------

TEST(EnvSocketTest, ReusePortAllowsSharedBindOnlyWhenAllOptIn) {
  Env env;
  const int a = env.socket();
  const int b = env.socket();
  EXPECT_EQ(env.setsockopt(a, kSockOptReusePort), 0);
  EXPECT_EQ(env.setsockopt(b, kSockOptReusePort), 0);
  EXPECT_EQ(env.bind(a, 6000), 0);
  EXPECT_EQ(env.bind(b, 6000), 0);  // shared: both opted in

  // A third socket WITHOUT the option cannot join the group...
  const int c = env.socket();
  EXPECT_EQ(env.bind(c, 6000), -1);
  EXPECT_EQ(env.last_errno(), EADDRINUSE);
  // ...and an opted-in socket cannot join a port held without the option.
  const int plain = env.socket();
  EXPECT_EQ(env.bind(plain, 6001), 0);
  const int d = env.socket();
  EXPECT_EQ(env.setsockopt(d, kSockOptReusePort), 0);
  EXPECT_EQ(env.bind(d, 6001), -1);
  EXPECT_EQ(env.last_errno(), EADDRINUSE);
}

TEST(EnvSocketTest, ReusePortDealsConnectionsRoundRobin) {
  Env env;
  const int listeners[3] = {env.socket(), env.socket(), env.socket()};
  for (const int s : listeners) {
    ASSERT_EQ(env.setsockopt(s, kSockOptReusePort), 0);
    ASSERT_EQ(env.bind(s, 6002), 0);
    ASSERT_EQ(env.listen(s, 8), 0);
  }
  for (int round = 0; round < 2; ++round) {
    for (const int s : listeners) {
      const int c = env.connect_to(6002);
      ASSERT_GE(c, 0);
      // The cursor advances one listener per connection, in fd order.
      const int srv = env.accept(s);
      EXPECT_GE(srv, 0) << "round " << round << " listener " << s;
      env.close(c);
      env.close(srv);
    }
  }
}

TEST(EnvSocketTest, ReusePortSkipsFullBacklogs) {
  Env env;
  const int a = env.socket();
  const int b = env.socket();
  for (const int s : {a, b}) {
    ASSERT_EQ(env.setsockopt(s, kSockOptReusePort), 0);
    ASSERT_EQ(env.bind(s, 6003), 0);
  }
  ASSERT_EQ(env.listen(a, 1), 0);
  ASSERT_EQ(env.listen(b, 8), 0);
  // Fill a's backlog; subsequent connections must all land on b.
  ASSERT_GE(env.connect_to(6003), 0);  // dealt to a
  for (int i = 0; i < 3; ++i) {
    const int c = env.connect_to(6003);
    ASSERT_GE(c, 0);
  }
  EXPECT_GE(env.accept(a), 0);
  EXPECT_EQ(env.accept(a), -1) << "a should hold exactly one connection";
  for (int i = 0; i < 3; ++i) EXPECT_GE(env.accept(b), 0);

  // With every backlog full the group refuses, like a single listener.
  ASSERT_GE(env.connect_to(6003), 0);  // refills a (backlog 1)
  for (int i = 0; i < 8; ++i) ASSERT_GE(env.connect_to(6003), 0);  // fills b
  EXPECT_EQ(env.connect_to(6003), -1);
  EXPECT_EQ(env.last_errno(), ECONNREFUSED);
}

TEST(EnvSocketTest, UnlistenRestoresReusePortOption) {
  Env env;
  const int s = env.socket();
  ASSERT_EQ(env.setsockopt(s, kSockOptReusePort), 0);
  ASSERT_EQ(env.bind(s, 6004), 0);
  ASSERT_EQ(env.listen(s, 4), 0);
  ASSERT_EQ(env.unlisten(s), 0);
  // The option survives the compensation: a sibling can still share.
  const int sibling = env.socket();
  ASSERT_EQ(env.setsockopt(sibling, kSockOptReusePort), 0);
  EXPECT_EQ(env.bind(sibling, 6004), 0);
  EXPECT_EQ(env.listen(s, 4), 0);
  EXPECT_EQ(env.listen(sibling, 4), 0);
  EXPECT_GE(env.connect_to(6004), 0);
}

}  // namespace
}  // namespace fir
