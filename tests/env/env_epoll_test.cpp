#include <gtest/gtest.h>

#include <cerrno>

#include "env/env.h"

namespace fir {
namespace {

TEST(EnvEpollTest, CtlAddModDel) {
  Env env;
  const int ep = env.epoll_create1();
  const int s = env.socket();
  EXPECT_EQ(env.epoll_ctl(ep, kEpollAdd, s, kPollIn), 0);
  EXPECT_EQ(env.epoll_ctl(ep, kEpollAdd, s, kPollIn), -1);
  EXPECT_EQ(env.last_errno(), EEXIST);
  EXPECT_EQ(env.epoll_ctl(ep, kEpollMod, s, kPollOut), 0);
  EXPECT_EQ(env.epoll_ctl(ep, kEpollDel, s, 0), 0);
  EXPECT_EQ(env.epoll_ctl(ep, kEpollDel, s, 0), -1);
  EXPECT_EQ(env.last_errno(), ENOENT);
  EXPECT_EQ(env.epoll_ctl(ep, kEpollAdd, 999, kPollIn), -1);
  EXPECT_EQ(env.last_errno(), EBADF);
}

TEST(EnvEpollTest, ListenerReadableOnPendingConnection) {
  Env env;
  const int ep = env.epoll_create1();
  const int s = env.socket();
  env.bind(s, 6000);
  env.listen(s, 4);
  env.epoll_ctl(ep, kEpollAdd, s, kPollIn);

  PollEvent events[4];
  EXPECT_EQ(env.epoll_wait(ep, events, 4), 0);
  ASSERT_GE(env.connect_to(6000), 0);
  ASSERT_EQ(env.epoll_wait(ep, events, 4), 1);
  EXPECT_EQ(events[0].fd, s);
  EXPECT_TRUE(events[0].events & kPollIn);
}

TEST(EnvEpollTest, SocketReadableAndWritableLevels) {
  Env env;
  const int ep = env.epoll_create1();
  const int s = env.socket();
  env.bind(s, 6001);
  env.listen(s, 4);
  const int client = env.connect_to(6001);
  const int conn = env.accept(s);
  env.epoll_ctl(ep, kEpollAdd, conn, kPollIn | kPollOut);

  PollEvent events[4];
  ASSERT_EQ(env.epoll_wait(ep, events, 4), 1);
  EXPECT_EQ(events[0].events & kPollIn, 0u);   // nothing to read yet
  EXPECT_NE(events[0].events & kPollOut, 0u);  // can write

  env.send(client, "x", 1);
  ASSERT_EQ(env.epoll_wait(ep, events, 4), 1);
  EXPECT_NE(events[0].events & kPollIn, 0u);

  // Level-triggered: still readable until drained.
  ASSERT_EQ(env.epoll_wait(ep, events, 4), 1);
  EXPECT_NE(events[0].events & kPollIn, 0u);
  char buf[2];
  env.recv(conn, buf, sizeof(buf));
  ASSERT_EQ(env.epoll_wait(ep, events, 4), 1);
  EXPECT_EQ(events[0].events & kPollIn, 0u);
}

TEST(EnvEpollTest, HupOnPeerClose) {
  Env env;
  const int ep = env.epoll_create1();
  const int s = env.socket();
  env.bind(s, 6002);
  env.listen(s, 4);
  const int client = env.connect_to(6002);
  const int conn = env.accept(s);
  env.epoll_ctl(ep, kEpollAdd, conn, kPollIn);
  env.close(client);

  PollEvent events[4];
  ASSERT_EQ(env.epoll_wait(ep, events, 4), 1);
  EXPECT_NE(events[0].events & kPollHup, 0u);
  EXPECT_NE(events[0].events & kPollIn, 0u);  // EOF is readable
}

TEST(EnvEpollTest, ClosingFdDropsInterest) {
  Env env;
  const int ep = env.epoll_create1();
  const int s = env.socket();
  env.bind(s, 6003);
  env.listen(s, 4);
  env.epoll_ctl(ep, kEpollAdd, s, kPollIn);
  env.connect_to(6003);
  env.close(s);
  PollEvent events[4];
  EXPECT_EQ(env.epoll_wait(ep, events, 4), 0);
}

TEST(EnvEpollTest, WaitValidatesArguments) {
  Env env;
  PollEvent events[1];
  EXPECT_EQ(env.epoll_wait(3, events, 1), -1);
  EXPECT_EQ(env.last_errno(), EBADF);
  const int ep = env.epoll_create1();
  EXPECT_EQ(env.epoll_wait(ep, events, 0), -1);
  EXPECT_EQ(env.last_errno(), EINVAL);
}

}  // namespace
}  // namespace fir
