// dup/pipe/socketpair/sendfile/writev semantics.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>

#include "env/env.h"

namespace fir {
namespace {

TEST(EnvVectorTest, DupSharesFileDescription) {
  Env env;
  env.vfs().put_file("/f", "0123456789");
  const int fd = env.open("/f", kRdOnly);
  const int copy = env.dup(fd);
  ASSERT_GE(copy, 0);
  char buf[4];
  EXPECT_EQ(env.read(fd, buf, 4), 4);
  // Shared offset: the dup continues where the original left off.
  EXPECT_EQ(env.read(copy, buf, 4), 4);
  EXPECT_EQ(std::string_view(buf, 4), "4567");
  EXPECT_EQ(env.dup(999), -1);
  EXPECT_EQ(env.last_errno(), EBADF);
}

TEST(EnvVectorTest, PipeCarriesBytesOneWay) {
  Env env;
  int p[2];
  ASSERT_EQ(env.pipe(p), 0);
  EXPECT_EQ(env.send(p[1], "ping", 4), 4);
  char buf[8];
  EXPECT_EQ(env.recv(p[0], buf, sizeof(buf)), 4);
  EXPECT_EQ(std::string_view(buf, 4), "ping");
  // Reader end cannot write.
  EXPECT_EQ(env.send(p[0], "x", 1), -1);
  EXPECT_EQ(env.last_errno(), EPIPE);
}

TEST(EnvVectorTest, SocketpairIsBidirectional) {
  Env env;
  int sp[2];
  ASSERT_EQ(env.socketpair(sp), 0);
  EXPECT_EQ(env.send(sp[0], "ab", 2), 2);
  EXPECT_EQ(env.send(sp[1], "cd", 2), 2);
  char buf[4];
  EXPECT_EQ(env.recv(sp[1], buf, sizeof(buf)), 2);
  EXPECT_EQ(std::string_view(buf, 2), "ab");
  EXPECT_EQ(env.recv(sp[0], buf, sizeof(buf)), 2);
  EXPECT_EQ(std::string_view(buf, 2), "cd");
}

TEST(EnvVectorTest, SendfileCopiesFileToSocket) {
  Env env;
  env.vfs().put_file("/f", "abcdefgh");
  const int file = env.open("/f", kRdOnly);
  int sp[2];
  ASSERT_EQ(env.socketpair(sp), 0);
  EXPECT_EQ(env.sendfile(sp[0], file, 2, 4), 4);
  char buf[8];
  EXPECT_EQ(env.recv(sp[1], buf, sizeof(buf)), 4);
  EXPECT_EQ(std::string_view(buf, 4), "cdef");
  // Past EOF: 0 bytes.
  EXPECT_EQ(env.sendfile(sp[0], file, 100, 4), 0);
  // Wrong fd kinds.
  EXPECT_EQ(env.sendfile(file, file, 0, 1), -1);
  EXPECT_EQ(env.sendfile(sp[0], sp[1], 0, 1), -1);
}

TEST(EnvVectorTest, WritevGathersSlices) {
  Env env;
  const int fd = env.open("/out", kCreat | kWrOnly);
  const Env::IoSlice slices[] = {{"head-", 5}, {"", 0}, {"body", 4}};
  EXPECT_EQ(env.writev(fd, slices, 3), 9);
  auto inode = env.vfs().lookup("/out");
  EXPECT_EQ(std::string(inode->data.begin(), inode->data.end()),
            "head-body");
}

TEST(EnvVectorTest, WritevStopsOnBackpressure) {
  Env env;
  int sp[2];
  ASSERT_EQ(env.socketpair(sp), 0);
  std::string big(SocketEndpoint::kRxCapacity, 'x');
  const Env::IoSlice slices[] = {{big.data(), big.size()},
                                 {"overflow", 8}};
  EXPECT_EQ(env.writev(sp[0], slices, 2),
            static_cast<ssize_t>(SocketEndpoint::kRxCapacity));
}

}  // namespace
}  // namespace fir
