#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "env/vfs.h"

namespace fir {
namespace {

TEST(VfsTest, CreateAndLookup) {
  Vfs vfs;
  EXPECT_EQ(vfs.lookup("/a"), nullptr);
  auto inode = vfs.create("/a", false);
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(vfs.lookup("/a"), inode);
  EXPECT_TRUE(vfs.exists("/a"));
}

TEST(VfsTest, CreateTruncates) {
  Vfs vfs;
  vfs.put_file("/a", "content");
  auto inode = vfs.create("/a", true);
  EXPECT_TRUE(inode->data.empty());
}

TEST(VfsTest, CreateWithoutTruncateKeepsData) {
  Vfs vfs;
  vfs.put_file("/a", "content");
  auto inode = vfs.create("/a", false);
  EXPECT_EQ(inode->data.size(), 7u);
}

TEST(VfsTest, UnlinkRemovesNameNotInode) {
  Vfs vfs;
  vfs.put_file("/a", "data");
  auto inode = vfs.lookup("/a");
  EXPECT_TRUE(vfs.unlink("/a"));
  EXPECT_FALSE(vfs.exists("/a"));
  EXPECT_FALSE(vfs.unlink("/a"));
  // The inode stays usable while referenced (open-but-unlinked semantics).
  EXPECT_EQ(inode->data.size(), 4u);
}

TEST(VfsTest, RenameMovesAndReplaces) {
  Vfs vfs;
  vfs.put_file("/src", "source");
  vfs.put_file("/dst", "target");
  EXPECT_TRUE(vfs.rename("/src", "/dst"));
  EXPECT_FALSE(vfs.exists("/src"));
  auto inode = vfs.lookup("/dst");
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(std::string(inode->data.begin(), inode->data.end()), "source");
  EXPECT_FALSE(vfs.rename("/missing", "/x"));
}

TEST(VfsTest, TotalBytesAndCount) {
  Vfs vfs;
  vfs.put_file("/a", "12345");
  vfs.put_file("/b", "123");
  EXPECT_EQ(vfs.file_count(), 2u);
  EXPECT_EQ(vfs.total_bytes(), 8u);
}

std::string contents(const Vfs& vfs, std::string_view path) {
  auto inode = vfs.lookup(path);
  return inode == nullptr ? std::string("<missing>")
                          : std::string(inode->data.begin(),
                                        inode->data.end());
}

TEST(VfsTest, UnsyncedWritesDropFromCrashImage) {
  Vfs vfs;
  auto inode = vfs.create("/d/log", false);
  inode->data = {'a', 'b', 'c'};
  // Never synced: the crash image has neither the name nor the bytes.
  EXPECT_FALSE(vfs.crash_image().exists("/d/log"));

  vfs.sync_inode(inode);
  inode->data.push_back('d');  // unsynced tail
  const Vfs image = vfs.crash_image();
  EXPECT_EQ(contents(image, "/d/log"), "abc");
  // The image itself is fully durable media.
  EXPECT_TRUE(image.durably_linked("/d/log"));
  EXPECT_EQ(image.durable_size("/d/log"), 3u);
}

TEST(VfsTest, TornTailKeepsPartialLastWrite) {
  Vfs vfs;
  auto inode = vfs.create("/d/log", false);
  inode->data = {'a', 'b'};
  vfs.sync_inode(inode);
  inode->data.insert(inode->data.end(), {'c', 'd', 'e', 'f'});

  CrashImageOptions torn;
  torn.torn_tail_bytes = 3;
  EXPECT_EQ(contents(vfs.crash_image(torn), "/d/log"), "abcde");

  torn.torn_bit_flip = true;
  const std::string flipped = contents(vfs.crash_image(torn), "/d/log");
  ASSERT_EQ(flipped.size(), 5u);
  EXPECT_EQ(flipped.substr(0, 4), "abcd");
  EXPECT_NE(flipped[4], 'e');
}

TEST(VfsTest, RenameIsVolatileUntilDirBarrier) {
  Vfs vfs;
  vfs.put_file("/d/dump", "old");  // put_file: durable from the start
  auto tmp = vfs.create("/d/dump.tmp", false);
  tmp->data = {'n', 'e', 'w'};
  vfs.sync_inode(tmp);
  ASSERT_TRUE(vfs.rename("/d/dump.tmp", "/d/dump"));

  // Crash before the directory barrier: the durable namespace still holds
  // the OLD binding for /d/dump and the tmp name — the pre-rename snapshot
  // is intact, never half-replaced.
  Vfs before = vfs.crash_image();
  EXPECT_EQ(contents(before, "/d/dump"), "old");
  EXPECT_EQ(contents(before, "/d/dump.tmp"), "new");

  vfs.sync_dir("/d");
  Vfs after = vfs.crash_image();
  EXPECT_EQ(contents(after, "/d/dump"), "new");
  EXPECT_FALSE(after.exists("/d/dump.tmp"));
}

TEST(VfsTest, SyncDirWithoutFsyncExposesRenameBeforeFsyncBug) {
  Vfs vfs;
  vfs.put_file("/d/dump", "old");
  auto tmp = vfs.create("/d/dump.tmp", false);
  tmp->data = {'n', 'e', 'w'};
  // BUG ORDER: rename + dir barrier without ever fsyncing the temp file.
  ASSERT_TRUE(vfs.rename("/d/dump.tmp", "/d/dump"));
  vfs.sync_dir("/d");
  // The durable name now points at an inode whose durable image is empty:
  // exactly the half-replaced snapshot the fsync-before-rename order
  // prevents.
  EXPECT_EQ(contents(vfs.crash_image(), "/d/dump"), "");
}

TEST(VfsTest, UnlinkDurableOnlyAfterDirBarrier) {
  Vfs vfs;
  vfs.put_file("/d/a", "x");
  ASSERT_TRUE(vfs.unlink("/d/a"));
  EXPECT_TRUE(vfs.crash_image().exists("/d/a"));
  vfs.sync_dir("/d");
  EXPECT_FALSE(vfs.crash_image().exists("/d/a"));
}

TEST(VfsTest, SyncDirTouchesOnlyThatDirectory) {
  Vfs vfs;
  auto a = vfs.create("/d/a", false);
  auto b = vfs.create("/e/b", false);
  a->data = {'1'};
  b->data = {'2'};
  vfs.sync_dir("/d");
  const Vfs image = vfs.crash_image();
  EXPECT_TRUE(image.exists("/d/a"));
  EXPECT_FALSE(image.exists("/e/b"));
}

TEST(VfsTest, HostBackingRoundTripsDurableState) {
  char tmpl[] = "/tmp/fir_vfs_back_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  {
    Vfs vfs;
    ASSERT_TRUE(vfs.attach_backing(dir));
    auto inode = vfs.create("/data/appendonly.aof", false);
    inode->data = {'S', 'E', 'T'};
    vfs.sync_inode(inode);          // write-through happens at the barrier
    inode->data.push_back('X');     // unsynced: must NOT reach the host
  }
  // A fresh VFS (a restarted worker) attaches the same directory and sees
  // exactly the durable image.
  Vfs fresh;
  ASSERT_TRUE(fresh.attach_backing(dir));
  EXPECT_EQ(contents(fresh, "/data/appendonly.aof"), "SET");
  EXPECT_TRUE(fresh.durably_linked("/data/appendonly.aof"));
  std::remove((dir + "/data__appendonly.aof").c_str());
  std::remove(dir.c_str());
}

// --- incremental barriers (docs/DURABILITY.md §Incremental barriers) -------
// These tests go through note_write/note_truncate the way env.cpp's write
// paths do; the earlier tests that assign inode->data directly exercise the
// distrust-the-flags full-copy fallback instead.

void append_bytes(const std::shared_ptr<Inode>& inode, std::string_view s) {
  inode->note_write(inode->data.size(), s.size());
  inode->data.insert(inode->data.end(), s.begin(), s.end());
}

TEST(VfsTest, AppendRunSyncsOnlyTheDelta) {
  Vfs vfs;
  auto inode = vfs.create("/d/log", false);
  append_bytes(inode, "0123456789");
  vfs.sync_inode(inode);
  const PersistStats after_first = vfs.persist_stats();
  EXPECT_EQ(after_first.bytes_synced, 10u);

  append_bytes(inode, "abc");
  vfs.sync_inode(inode);
  const PersistStats s = vfs.persist_stats();
  // The second barrier copied the 3-byte tail, not the 13-byte file.
  EXPECT_EQ(s.bytes_synced, 13u);
  EXPECT_EQ(s.bytes_elided, 10u);
  EXPECT_EQ(s.delta_syncs, 2u);  // the first sync is also an append run
  EXPECT_EQ(s.full_syncs, 0u);
  EXPECT_EQ(contents(vfs.crash_image(), "/d/log"), "0123456789abc");
}

TEST(VfsTest, BarrierOnCleanInodeIsNoop) {
  Vfs vfs;
  auto inode = vfs.create("/d/log", false);
  append_bytes(inode, "abc");
  vfs.sync_inode(inode);
  vfs.sync_inode(inode);  // nothing changed since the last barrier
  const PersistStats s = vfs.persist_stats();
  EXPECT_EQ(s.barriers, 2u);
  EXPECT_EQ(s.noop_syncs, 1u);
  EXPECT_EQ(s.bytes_synced, 3u);  // the noop copied nothing
}

TEST(VfsTest, RewriteInsideDurablePrefixTakesFullCopy) {
  Vfs vfs;
  auto inode = vfs.create("/d/log", false);
  append_bytes(inode, "abcdef");
  vfs.sync_inode(inode);

  // Overwrite inside the durable prefix: durable is no longer a verbatim
  // prefix of data, so the delta path would persist a torn hybrid.
  inode->note_write(1, 2);
  inode->data[1] = 'X';
  inode->data[2] = 'Y';
  vfs.sync_inode(inode);
  const PersistStats s = vfs.persist_stats();
  EXPECT_EQ(s.full_syncs, 1u);
  EXPECT_EQ(contents(vfs.crash_image(), "/d/log"), "aXYdef");
}

TEST(VfsTest, TruncateThenAppendTakesFullCopy) {
  Vfs vfs;
  auto inode = vfs.create("/d/log", false);
  append_bytes(inode, "abcdef");
  vfs.sync_inode(inode);

  // Truncate below the durable size, then append fresh bytes. The volatile
  // image is SHORTER-then-regrown: an append-only delta would leave the old
  // "def" tail fused under the new bytes.
  inode->note_truncate(3);
  inode->data.resize(3);
  append_bytes(inode, "Z");
  vfs.sync_inode(inode);
  const PersistStats s = vfs.persist_stats();
  EXPECT_EQ(s.full_syncs, 1u);
  EXPECT_EQ(contents(vfs.crash_image(), "/d/log"), "abcZ");
}

TEST(VfsTest, TornTailSemanticsUnchangedOverDeltaSyncedFile) {
  // Same scenario as TornTailKeepsPartialLastWrite, but the durable prefix
  // was built by a delta barrier: the torn-tail window must still start at
  // the durable boundary, not at the last full sync.
  Vfs vfs;
  auto inode = vfs.create("/d/log", false);
  append_bytes(inode, "a");
  vfs.sync_inode(inode);
  append_bytes(inode, "b");
  vfs.sync_inode(inode);  // delta sync: durable == "ab"
  append_bytes(inode, "cdef");

  CrashImageOptions torn;
  torn.torn_tail_bytes = 3;
  EXPECT_EQ(contents(vfs.crash_image(torn), "/d/log"), "abcde");
  torn.torn_bit_flip = true;
  const std::string flipped = contents(vfs.crash_image(torn), "/d/log");
  ASSERT_EQ(flipped.size(), 5u);
  EXPECT_EQ(flipped.substr(0, 4), "abcd");
  EXPECT_NE(flipped[4], 'e');
}

TEST(VfsTest, HostBackedRenameSurvivesDeltaAppends) {
  char tmpl[] = "/tmp/fir_vfs_ren_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  {
    Vfs vfs;
    ASSERT_TRUE(vfs.attach_backing(dir));
    auto inode = vfs.create("/data/log", false);
    append_bytes(inode, "one");
    vfs.sync_inode(inode);   // full write-through under the original name
    append_bytes(inode, "two");
    vfs.sync_inode(inode);   // delta append in place on the host file
    ASSERT_TRUE(vfs.rename("/data/log", "/data/log2"));
    vfs.sync_dir("/data");   // durable namespace + backing follow the rename
    append_bytes(inode, "three");
    vfs.sync_inode(inode);   // delta append must hit the NEW backing name
  }
  Vfs fresh;
  ASSERT_TRUE(fresh.attach_backing(dir));
  EXPECT_FALSE(fresh.exists("/data/log"));
  EXPECT_EQ(contents(fresh, "/data/log2"), "onetwothree");
  std::remove((dir + "/data__log2").c_str());
  std::remove(dir.c_str());
}

TEST(VfsTest, ImportFromIsFullyDurable) {
  Vfs src;
  auto inode = src.create("/d/f", false);
  inode->data = {'h', 'i'};  // never synced in the source
  Vfs dst;
  dst.import_from(src);
  // Graceful handoff: the inherited file is durable in the new instance.
  EXPECT_EQ(contents(dst.crash_image(), "/d/f"), "hi");
}

}  // namespace
}  // namespace fir
