#include <gtest/gtest.h>

#include "env/vfs.h"

namespace fir {
namespace {

TEST(VfsTest, CreateAndLookup) {
  Vfs vfs;
  EXPECT_EQ(vfs.lookup("/a"), nullptr);
  auto inode = vfs.create("/a", false);
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(vfs.lookup("/a"), inode);
  EXPECT_TRUE(vfs.exists("/a"));
}

TEST(VfsTest, CreateTruncates) {
  Vfs vfs;
  vfs.put_file("/a", "content");
  auto inode = vfs.create("/a", true);
  EXPECT_TRUE(inode->data.empty());
}

TEST(VfsTest, CreateWithoutTruncateKeepsData) {
  Vfs vfs;
  vfs.put_file("/a", "content");
  auto inode = vfs.create("/a", false);
  EXPECT_EQ(inode->data.size(), 7u);
}

TEST(VfsTest, UnlinkRemovesNameNotInode) {
  Vfs vfs;
  vfs.put_file("/a", "data");
  auto inode = vfs.lookup("/a");
  EXPECT_TRUE(vfs.unlink("/a"));
  EXPECT_FALSE(vfs.exists("/a"));
  EXPECT_FALSE(vfs.unlink("/a"));
  // The inode stays usable while referenced (open-but-unlinked semantics).
  EXPECT_EQ(inode->data.size(), 4u);
}

TEST(VfsTest, RenameMovesAndReplaces) {
  Vfs vfs;
  vfs.put_file("/src", "source");
  vfs.put_file("/dst", "target");
  EXPECT_TRUE(vfs.rename("/src", "/dst"));
  EXPECT_FALSE(vfs.exists("/src"));
  auto inode = vfs.lookup("/dst");
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(std::string(inode->data.begin(), inode->data.end()), "source");
  EXPECT_FALSE(vfs.rename("/missing", "/x"));
}

TEST(VfsTest, TotalBytesAndCount) {
  Vfs vfs;
  vfs.put_file("/a", "12345");
  vfs.put_file("/b", "123");
  EXPECT_EQ(vfs.file_count(), 2u);
  EXPECT_EQ(vfs.total_bytes(), 8u);
}

}  // namespace
}  // namespace fir
