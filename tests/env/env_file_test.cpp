#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>

#include "env/env.h"

namespace fir {
namespace {

TEST(EnvFileTest, OpenMissingWithoutCreatFails) {
  Env env;
  EXPECT_EQ(env.open("/nope", kRdOnly), -1);
  EXPECT_EQ(env.last_errno(), ENOENT);
}

TEST(EnvFileTest, CreateWriteReadRoundTrip) {
  Env env;
  const int fd = env.open("/f", kCreat | kRdWr);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(env.write(fd, "hello", 5), 5);
  EXPECT_EQ(env.lseek(fd, 0, kSeekSet), 0);
  char buf[8] = {};
  EXPECT_EQ(env.read(fd, buf, sizeof(buf)), 5);
  EXPECT_STREQ(buf, "hello");
  EXPECT_EQ(env.close(fd), 0);
  EXPECT_EQ(env.close(fd), -1);  // double close
  EXPECT_EQ(env.last_errno(), EBADF);
}

TEST(EnvFileTest, PreadDoesNotMoveOffset) {
  Env env;
  env.vfs().put_file("/f", "0123456789");
  const int fd = env.open("/f", kRdOnly);
  char buf[4] = {};
  EXPECT_EQ(env.pread(fd, buf, 4, 3), 4);
  EXPECT_EQ(std::string_view(buf, 4), "3456");
  EXPECT_EQ(env.file_offset(fd), 0);
  // Past EOF reads return 0.
  EXPECT_EQ(env.pread(fd, buf, 4, 100), 0);
}

TEST(EnvFileTest, PwriteExtendsWithZeros) {
  Env env;
  const int fd = env.open("/f", kCreat | kWrOnly);
  EXPECT_EQ(env.pwrite(fd, "xy", 2, 5), 2);
  std::size_t size = 0;
  EXPECT_EQ(env.fstat_size(fd, &size), 0);
  EXPECT_EQ(size, 7u);
  auto inode = env.vfs().lookup("/f");
  EXPECT_EQ(inode->data[0], '\0');
  EXPECT_EQ(inode->data[5], 'x');
}

TEST(EnvFileTest, AppendFlagStartsAtEnd) {
  Env env;
  env.vfs().put_file("/log", "abc");
  const int fd = env.open("/log", kWrOnly | kAppend);
  EXPECT_EQ(env.write(fd, "de", 2), 2);
  std::size_t size = 0;
  env.stat_size("/log", &size);
  EXPECT_EQ(size, 5u);
}

TEST(EnvFileTest, AppendWritesIgnoreSeeks) {
  // O_APPEND semantics: every write targets end-of-file even after lseek,
  // so appenders never need manual offset bookkeeping.
  Env env;
  env.vfs().put_file("/log", "abc");
  const int fd = env.open("/log", kWrOnly | kAppend);
  EXPECT_EQ(env.lseek(fd, 0, kSeekSet), 0);
  EXPECT_EQ(env.write(fd, "de", 2), 2);
  auto inode = env.vfs().lookup("/log");
  EXPECT_EQ(std::string(inode->data.begin(), inode->data.end()), "abcde");
}

TEST(EnvFileTest, FsyncMakesBytesAndNameDurable) {
  Env env;
  const int fd = env.open("/d/f", kCreat | kWrOnly);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(env.write(fd, "abc", 3), 3);
  EXPECT_FALSE(env.vfs().crash_image().exists("/d/f"));
  EXPECT_EQ(env.fsync(fd), 0);
  auto image = env.vfs().crash_image();
  auto inode = image.lookup("/d/f");
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(std::string(inode->data.begin(), inode->data.end()), "abc");
}

TEST(EnvFileTest, FdatasyncFlushesDataNotLinks) {
  Env env;
  const int fd = env.open("/d/f", kCreat | kWrOnly);
  EXPECT_EQ(env.write(fd, "abc", 3), 3);
  EXPECT_EQ(env.fdatasync(fd), 0);
  // Content flushed, but the brand-new name is not durably linked until an
  // fsync or a directory barrier.
  EXPECT_FALSE(env.vfs().crash_image().exists("/d/f"));
  EXPECT_EQ(env.fsync_dir("/d"), 0);
  EXPECT_TRUE(env.vfs().crash_image().exists("/d/f"));
  EXPECT_EQ(env.vfs().durable_size("/d/f"), 3u);
}

TEST(EnvFileTest, PersistOpsCountAndCrashCapture) {
  Env env;
  const std::uint64_t before = env.persist_op_count();
  const int fd = env.open("/d/f", kCreat | kWrOnly);  // create: +1
  EXPECT_EQ(env.write(fd, "a", 1), 1);                // +1
  EXPECT_EQ(env.fsync(fd), 0);                        // +1
  EXPECT_EQ(env.write(fd, "b", 1), 1);                // +1
  EXPECT_EQ(env.persist_op_count(), before + 4);

  // Re-run the same sequence in a fresh env with a capture armed right
  // after the fsync: the image holds "a" and drops the unsynced "b".
  Env env2;
  env2.arm_crash_capture(before + 3);
  const int fd2 = env2.open("/d/f", kCreat | kWrOnly);
  EXPECT_EQ(env2.write(fd2, "a", 1), 1);
  EXPECT_EQ(env2.fsync(fd2), 0);
  EXPECT_TRUE(env2.crash_capture_fired());
  EXPECT_EQ(env2.write(fd2, "b", 1), 1);
  auto inode = env2.captured_crash_image().lookup("/d/f");
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(std::string(inode->data.begin(), inode->data.end()), "a");
}

TEST(EnvFileTest, DurableSizeTracksSyncBarrier) {
  Env env;
  const int fd = env.open("/f", kCreat | kWrOnly);
  EXPECT_EQ(env.write(fd, "abcd", 4), 4);
  EXPECT_EQ(env.file_durable_size(fd), 0);
  EXPECT_EQ(env.fsync(fd), 0);
  EXPECT_EQ(env.file_durable_size(fd), 4);
  EXPECT_EQ(env.write(fd, "ef", 2), 2);
  EXPECT_EQ(env.file_durable_size(fd), 4);
  EXPECT_EQ(env.file_size(fd), 6);
}

TEST(EnvFileTest, TruncFlagClears) {
  Env env;
  env.vfs().put_file("/f", "abc");
  const int fd = env.open("/f", kWrOnly | kTrunc);
  std::size_t size = 99;
  env.fstat_size(fd, &size);
  EXPECT_EQ(size, 0u);
}

TEST(EnvFileTest, LseekWhenceVariants) {
  Env env;
  env.vfs().put_file("/f", "0123456789");
  const int fd = env.open("/f", kRdOnly);
  EXPECT_EQ(env.lseek(fd, 4, kSeekSet), 4);
  EXPECT_EQ(env.lseek(fd, 2, kSeekCur), 6);
  EXPECT_EQ(env.lseek(fd, -1, kSeekEnd), 9);
  EXPECT_EQ(env.lseek(fd, -100, kSeekCur), -1);
  EXPECT_EQ(env.last_errno(), EINVAL);
  EXPECT_EQ(env.lseek(fd, 0, 99), -1);
}

TEST(EnvFileTest, FtruncateGrowsAndShrinks) {
  Env env;
  env.vfs().put_file("/f", "abcdef");
  const int fd = env.open("/f", kRdWr);
  EXPECT_EQ(env.ftruncate(fd, 3), 0);
  std::size_t size = 0;
  env.fstat_size(fd, &size);
  EXPECT_EQ(size, 3u);
  EXPECT_EQ(env.ftruncate(fd, 10), 0);
  env.fstat_size(fd, &size);
  EXPECT_EQ(size, 10u);
}

TEST(EnvFileTest, UnlinkedOpenFileStaysReadable) {
  Env env;
  env.vfs().put_file("/f", "keep");
  const int fd = env.open("/f", kRdOnly);
  EXPECT_EQ(env.unlink("/f"), 0);
  char buf[8] = {};
  EXPECT_EQ(env.read(fd, buf, sizeof(buf)), 4);
  EXPECT_EQ(env.open("/f", kRdOnly), -1);
}

TEST(EnvFileTest, HeapAccounting) {
  Env env;
  void* a = env.mem_alloc(100);
  void* b = env.mem_alloc_zero(50);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(static_cast<char*>(b)[49], 0);
  EXPECT_EQ(env.stats().heap_bytes, 150u);
  EXPECT_EQ(env.stats().heap_peak_bytes, 150u);
  env.mem_free(a);
  EXPECT_EQ(env.stats().heap_bytes, 50u);
  EXPECT_EQ(env.stats().heap_peak_bytes, 150u);
  void* c = env.mem_realloc(b, 80);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(env.stats().heap_bytes, 80u);
  env.mem_free(c);
  EXPECT_EQ(env.stats().heap_bytes, 0u);
  env.mem_free(nullptr);  // no-op
}

TEST(EnvFileTest, FdExhaustionReportsEmfile) {
  Env env;
  int last = -1;
  for (;;) {
    const int fd = env.open("/x", kCreat | kRdWr);
    if (fd < 0) {
      EXPECT_EQ(env.last_errno(), EMFILE);
      break;
    }
    last = fd;
  }
  EXPECT_GT(last, 500);  // table-sized
}

}  // namespace
}  // namespace fir
