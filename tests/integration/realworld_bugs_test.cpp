// §VI-F reproduction: the nginx SSI NULL-dereference (ticket #1263) and the
// lighttpd WebDAV use-after-free (bug #2780) as end-to-end scenarios.
#include <gtest/gtest.h>

#include "apps/littlehttpd.h"
#include "apps/miniginx.h"
#include "workload/http_client.h"

namespace fir {
namespace {

TxManagerConfig protected_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kAdaptive;
  return c;
}

TxManagerConfig vanilla_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kUnprotected;
  return c;
}

template <typename ServerT>
HttpClient::Response fetch(ServerT& server, HttpClient& client,
                           std::string_view target) {
  EXPECT_TRUE(client.connected() || client.connect());
  EXPECT_TRUE(client.send_request("GET", target));
  HttpClient::Response response;
  for (int i = 0; i < 16; ++i) {
    server.run_once();
    if (client.try_read_response(response) == 1) return response;
  }
  ADD_FAILURE() << "no response for " << target;
  return response;
}

TEST(RealWorldBugsTest, NginxSsiNullDerefCrashesVanilla) {
  Miniginx server(vanilla_cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  server.enable_ssi_null_bug(true);
  HttpClient client(server.fx().env(), server.port());
  ASSERT_TRUE(client.connect());
  ASSERT_TRUE(client.send_request("GET", "/broken.shtml"));
  EXPECT_THROW(
      {
        for (int i = 0; i < 8; ++i) server.run_once();
      },
      FatalCrashError);
}

TEST(RealWorldBugsTest, NginxSsiNullDerefRecoversUnderFirestarter) {
  Miniginx server(protected_cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  server.enable_ssi_null_bug(true);
  HttpClient client(server.fx().env(), server.port());

  // The buggy subrequest: crash -> rollback to the pread() transaction ->
  // inject -1/EINVAL -> the server answers an empty error response
  // (paper: "the Nginx server eventually returns an empty response").
  const auto broken = fetch(server, client, "/broken.shtml");
  EXPECT_EQ(broken.status, 500);
  EXPECT_TRUE(broken.body.empty());

  // Healthy SSI pages and static files keep working, repeatedly.
  EXPECT_EQ(fetch(server, client, "/page.shtml").status, 200);
  EXPECT_EQ(fetch(server, client, "/index.html").status, 200);
  EXPECT_EQ(fetch(server, client, "/broken.shtml").status, 500);
  EXPECT_EQ(fetch(server, client, "/index.html").status, 200);

  std::uint64_t diversions = 0;
  for (const Site& s : server.fx().mgr().sites().all())
    diversions += s.stats.diversions;
  EXPECT_GE(diversions, 2u);
}

TEST(RealWorldBugsTest, LighttpdWebdavUafRecoversTo403) {
  Littlehttpd server(protected_cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  server.enable_webdav_uaf_bug(true);
  HttpClient client(server.fx().env(), server.port());

  // WebDAV request, then a mixed request on the same keep-alive
  // connection: the stale DAV handle crash diverts at open64() and the
  // server answers "403 - Forbidden" (paper §VI-F).
  HttpClient::Response response;
  ASSERT_TRUE(client.connect());
  ASSERT_TRUE(client.send_request("PROPFIND", "/dav/notes.txt"));
  for (int i = 0; i < 16; ++i) {
    server.run_once();
    if (client.try_read_response(response) == 1) break;
  }
  EXPECT_EQ(response.status, 207);

  const auto mixed = fetch(server, client, "/index.html");
  EXPECT_EQ(mixed.status, 403);
  EXPECT_NE(mixed.body.find("Forbidden"), std::string::npos);

  // The server survives to serve other connections.
  HttpClient fresh(server.fx().env(), server.port());
  EXPECT_EQ(fetch(server, fresh, "/readme.txt").status, 200);
}

}  // namespace
}  // namespace fir
