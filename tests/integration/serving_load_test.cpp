// Timed load generator against a live worker pool: the serving
// benchmark's measurement machinery, smoke-tested end to end. Covers the
// closed-loop and open-loop drivers, the latency histogram plumbing, and
// crash recovery under pipelined load (no sibling request may be lost
// while a worker recovers).
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

#include "apps/miniginx.h"
#include "workload/concurrent.h"

namespace fir {
namespace {

TxManagerConfig stm_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

TEST(ServingLoadTest, ClosedLoopWindowTalliesAndHistogramAgree) {
  Miniginx server(stm_cfg());
  ASSERT_TRUE(server.start(8080).is_ok());
  ASSERT_TRUE(server.start_workers(2).is_ok());

  TimedLoadSpec spec;
  for (int i = 0; i < server.worker_count(); ++i)
    spec.ports.push_back(server.worker_port(i));
  spec.threads = 2;
  spec.pipeline_depth = 4;
  spec.warmup_seconds = 0.05;
  spec.duration_seconds = 0.25;
  const TimedLoadResult result = run_timed_http_load(server, spec);
  server.stop();

  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.transport_failures, 0u);
  EXPECT_EQ(result.completed,
            result.responses_2xx + result.responses_4xx +
                result.responses_5xx);
  EXPECT_EQ(result.responses_5xx, 0u);
  // Every completed response recorded exactly one latency sample.
  EXPECT_EQ(result.latency_us.count(), result.completed);
  EXPECT_GT(result.requests_per_second, 0.0);
  // Percentiles are ordered and bounded by the recorded extremes.
  EXPECT_LE(result.latency_us.min(), result.p50_us());
  EXPECT_LE(result.p50_us(), result.p90_us());
  EXPECT_LE(result.p90_us(), result.p99_us());
  EXPECT_LE(result.p99_us(), result.p999_us());
  EXPECT_LE(result.p999_us(), result.latency_us.max());
}

TEST(ServingLoadTest, OpenLoopPacesOfferedLoad) {
  Miniginx server(stm_cfg());
  ASSERT_TRUE(server.start(8080).is_ok());
  ASSERT_TRUE(server.start_workers(1).is_ok());

  TimedLoadSpec spec;
  spec.ports.push_back(server.worker_port(0));
  spec.threads = 1;
  spec.pipeline_depth = 4;
  spec.warmup_seconds = 0.05;
  spec.duration_seconds = 0.25;
  spec.open_loop_rate_per_thread = 400;  // far below saturation
  const TimedLoadResult result = run_timed_http_load(server, spec);
  server.stop();

  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.transport_failures, 0u);
  // The schedule bounds offered load: 400/s over a 0.25 s window plus
  // boundary slop can never approach the closed-loop thousands.
  EXPECT_LE(result.sent, 400u);
}

TEST(ServingLoadTest, ClosePerRequestArmCompletesWithoutFailures) {
  ::setenv("FIR_KEEPALIVE", "0", 1);
  Miniginx server(stm_cfg());
  ::unsetenv("FIR_KEEPALIVE");
  ASSERT_TRUE(server.start(8080).is_ok());
  ASSERT_TRUE(server.start_workers(2).is_ok());

  TimedLoadSpec spec;
  for (int i = 0; i < server.worker_count(); ++i)
    spec.ports.push_back(server.worker_port(i));
  spec.threads = 2;
  spec.pipeline_depth = 4;  // forced to 1 internally with keep_alive=false
  spec.keep_alive = false;
  spec.warmup_seconds = 0.05;
  spec.duration_seconds = 0.25;
  const TimedLoadResult result = run_timed_http_load(server, spec);
  server.stop();

  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.transport_failures, 0u);
  EXPECT_EQ(result.responses_2xx, result.completed);
}

// Saturation + fault injection: one worker crashes (§VI-F SSI NULL deref)
// on every request of one client while other clients run clean pipelined
// load. Zero transport failures anywhere: crashing requests divert to
// 500s, sibling requests and sibling workers lose nothing.
TEST(ServingLoadTest, RecoveryUnderPipelinedLoadLosesNothing) {
  Miniginx server(stm_cfg());
  server.enable_ssi_null_bug(true);
  ASSERT_TRUE(server.start(8080).is_ok());
  ASSERT_TRUE(server.start_workers(2).is_ok());

  std::vector<ThreadedClientSpec> specs;
  specs.push_back({server.worker_port(0), "/broken.shtml", 40});
  specs.push_back({server.worker_port(1), "/index.html", 40});
  const ThreadedLoadResult result = run_threaded_http_load(server, specs);

  EXPECT_EQ(result.clients[0].responses_5xx, 40u);
  EXPECT_EQ(result.clients[1].responses_2xx, 40u);
  EXPECT_EQ(result.total_transport_failures(), 0u);
  EXPECT_EQ(result.total_responses(), result.total_sent());
  for (int i = 0; i < 2; ++i)
    EXPECT_TRUE(server.worker_alive(i)) << "worker " << i;
  server.stop();
}

// SO_REUSEPORT serving: with FIR_REUSEPORT=1 every worker listens on the
// SAME port and the env deals connections across the listener group, so
// clients need no port map — the prefork fleet's sharding model.
TEST(ServingLoadTest, ReuseportWorkersShareOnePort) {
  ::setenv("FIR_REUSEPORT", "1", 1);
  Miniginx server(stm_cfg());
  ::unsetenv("FIR_REUSEPORT");
  ASSERT_TRUE(server.serving().reuse_port);
  ASSERT_TRUE(server.start(8080).is_ok());
  ASSERT_TRUE(server.start_workers(2).is_ok());
  EXPECT_EQ(server.worker_port(0), server.port());
  EXPECT_EQ(server.worker_port(1), server.port());

  TimedLoadSpec spec;
  spec.ports = {server.port(), server.port()};
  spec.threads = 2;
  spec.pipeline_depth = 4;
  spec.warmup_seconds = 0.05;
  spec.duration_seconds = 0.25;
  const TimedLoadResult result = run_timed_http_load(server, spec);
  server.stop();

  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.transport_failures, 0u);
  EXPECT_EQ(result.responses_5xx, 0u);
}

// Drain hook: stop_accepting() removes the listener (new connections are
// refused) while an established connection keeps being served — the
// worker half of the fleet's zero-loss drain.
TEST(ServingLoadTest, StopAcceptingKeepsServingEstablishedConnections) {
  Miniginx server(stm_cfg());
  ASSERT_TRUE(server.start(8080).is_ok());
  Env& env = server.fx().env();
  const int fd = env.connect_to(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(server.accepting());
  // Let the event loop accept before the listener disappears.
  server.run_once();

  server.stop_accepting();
  EXPECT_FALSE(server.accepting());
  EXPECT_EQ(env.connect_to(server.port()), -1);
  EXPECT_EQ(env.last_errno(), ECONNREFUSED);

  const char* req = "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(env.send(fd, req, std::strlen(req)),
            static_cast<ssize_t>(std::strlen(req)));
  std::string out;
  char buf[65536];
  for (int i = 0; i < 8; ++i) {
    server.run_once();
    for (;;) {
      const ssize_t r = env.recv(fd, buf, sizeof(buf));
      if (r <= 0) break;
      out.append(buf, static_cast<std::size_t>(r));
    }
  }
  EXPECT_NE(out.find("200 OK"), std::string::npos) << out;
  env.close(fd);
  server.stop();
}

}  // namespace
}  // namespace fir
