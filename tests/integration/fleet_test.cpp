// Fleet supervisor integration tests: process-level crash containment,
// backoff restart, zero-loss drain, flap quarantine.
//
// These fork real worker processes (suite name contains "Fleet" so the
// TSan CI lane, which cannot follow fork-from-multithreaded-parent,
// excludes them — same treatment as the DeathTest suites).
#include "apps/supervisor.h"

#include <ftw.h>
#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "workload/fleet.h"

namespace fir {
namespace {

using fleet::FleetConfig;
using fleet::FleetSupervisor;
using fleet::KillMode;

FleetConfig fast_config() {
  FleetConfig config;
  config.workers = 4;
  config.backoff_base_ms = 5;
  config.backoff_max_ms = 100;
  config.heartbeat_deadline_ms = 250;  // hang tests stay fast
  config.flap_threshold = 5;
  config.flap_window_ms = 2000;
  return config;
}

bool wait_for(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

bool fleet_at_full_strength(FleetSupervisor& fleet) {
  for (int i = 0; i < fleet.worker_count(); ++i)
    if (!fleet.worker_up(i)) return false;
  return true;
}

// Host-dir scaffolding for the durable-fleet tests.
std::string make_temp_dir() {
  char tmpl[] = "/tmp/fir_fleet_test_XXXXXX";
  return ::mkdtemp(tmpl) != nullptr ? std::string(tmpl) : std::string();
}

int remove_tree_cb(const char* path, const struct stat*, int, struct FTW*) {
  return ::remove(path);
}

void remove_tree(const std::string& dir) {
  if (!dir.empty())
    ::nftw(dir.c_str(), remove_tree_cb, 8, FTW_DEPTH | FTW_PHYS);
}

TEST(FleetSupervisorTest, StartsServesStops) {
  FleetSupervisor fleet(fast_config());
  ASSERT_TRUE(fleet.start());
  ASSERT_TRUE(wait_for([&] { return fleet_at_full_strength(fleet); }, 5000));
  const fleet::BatchResult r =
      fleet.submit(0, {"/index.html", "/about.txt", "/nope.html"});
  EXPECT_EQ(r.lost, 0);
  ASSERT_EQ(r.statuses.size(), 3u);
  EXPECT_EQ(r.statuses[0], 200);
  EXPECT_EQ(r.statuses[1], 200);
  EXPECT_EQ(r.statuses[2], 404);
  fleet.stop();
  const fleet::FleetCounters c = fleet.counters();
  EXPECT_EQ(c.spawns, 4u);
  EXPECT_EQ(c.deaths, 0u);  // stop() drains; drains are not deaths
}

// The acceptance-criteria test: a 4-worker fleet under multi-threaded
// pipelined load while one worker is murdered per interval for >= 10
// cycles, alternating the three unplanned-death shapes. Every worker must
// restart and the fleet-wide request loss must be exactly zero. The kill
// interval is compressed from the issue's 1 s to keep CI fast; the cycle
// count is the contract.
TEST(FleetKillCycleTest, ZeroLossAcrossTwelveKills) {
  FleetSupervisor fleet(fast_config());
  ASSERT_TRUE(fleet.start());
  ASSERT_TRUE(wait_for([&] { return fleet_at_full_strength(fleet); }, 5000));

  std::atomic<bool> stop_chaos{false};
  std::atomic<int> kills{0};
  std::thread chaos([&] {
    const KillMode cycle[] = {KillMode::kExit70, KillMode::kSigkill,
                              KillMode::kHang};
    int i = 0;
    while (!stop_chaos.load() && kills.load() < 12) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      if (fleet.kill_worker(i % fleet.worker_count(), cycle[i % 3]))
        kills.fetch_add(1);
      ++i;
    }
  });

  FleetLoadSpec spec;
  spec.threads = 4;
  spec.batch_size = 8;
  spec.duration_ms = 2500;
  const FleetLoadResult result = run_fleet_http_load(fleet, spec);
  stop_chaos.store(true);
  chaos.join();

  EXPECT_GE(kills.load(), 10) << "chaos must land at least 10 kill cycles";
  // Zero-loss ledger: every request answered, none lost.
  EXPECT_EQ(result.lost, 0u);
  EXPECT_EQ(result.answered(), result.requests);
  EXPECT_GT(result.responses_2xx, 0u);

  // Every victim restarted within the backoff bound.
  ASSERT_TRUE(wait_for([&] { return fleet_at_full_strength(fleet); }, 5000))
      << "fleet did not return to full strength";
  const fleet::FleetCounters c = fleet.counters();
  EXPECT_GE(c.deaths, 10u);
  EXPECT_GE(c.restarts, c.deaths);
  EXPECT_GT(c.exit70_deaths, 0u);
  EXPECT_GT(c.signal_deaths, 0u);
  EXPECT_GT(c.hang_deaths, 0u);
  EXPECT_EQ(c.quarantines, 0u);
  fleet.stop();
}

// Flap breaker: a shard whose worker dies on every spawn is quarantined
// after flap_threshold deaths inside the window; its siblings keep
// serving, and the quarantine event + counter fire exactly once.
TEST(FleetFlapBreakerTest, PersistentCrasherIsQuarantined) {
  FleetConfig config = fast_config();
  config.flap_threshold = 4;
  config.flap_window_ms = 10000;
  config.crash_on_spawn_shards = {2};
  FleetSupervisor fleet(config);
  ASSERT_TRUE(fleet.start());

  ASSERT_TRUE(wait_for([&] { return fleet.quarantined(2); }, 10000))
      << "flap breaker never tripped";
  const fleet::FleetCounters c = fleet.counters();
  EXPECT_EQ(c.quarantines, 1u);
  EXPECT_GE(c.deaths, 4u);
  EXPECT_GE(c.exit70_deaths, 4u);
  EXPECT_EQ(fleet.shard_owner(2), -1);

  // Siblings keep serving their shards.
  for (const int shard : {0, 1, 3}) {
    const fleet::BatchResult r = fleet.submit(shard, {"/index.html"});
    EXPECT_EQ(r.lost, 0) << "shard " << shard;
    ASSERT_EQ(r.statuses.size(), 1u);
    EXPECT_EQ(r.statuses[0], 200);
  }
  // The quarantined shard fails fast with explicit loss accounting.
  const fleet::BatchResult dead = fleet.submit(2, {"/index.html"});
  EXPECT_EQ(dead.lost, 1);

  // The quarantine landed in the trace ring too.
  bool saw_quarantine = false;
  for (const obs::TraceEvent& e : fleet.observability().trace().snapshot())
    saw_quarantine |= e.kind == obs::EventKind::kWorkerQuarantine;
  EXPECT_TRUE(saw_quarantine);
  fleet.stop();
}

// Planned drain: the worker hands its shard to a sibling and exits 0 —
// no death, no loss, and the shard keeps serving on the sibling.
TEST(FleetDrainTest, DrainHandsShardToSiblingWithZeroLoss) {
  FleetSupervisor fleet(fast_config());
  ASSERT_TRUE(fleet.start());
  ASSERT_TRUE(wait_for([&] { return fleet_at_full_strength(fleet); }, 5000));

  // Keep load flowing on the draining worker's shard throughout.
  std::atomic<bool> stop_load{false};
  std::uint64_t answered = 0, submitted = 0;
  std::thread load([&] {
    while (!stop_load.load()) {
      const fleet::BatchResult r = fleet.submit(1, {"/index.html", "/api.json"});
      submitted += 2;
      answered += r.statuses.size();
      if (r.lost != 0) break;  // test will fail on the ledger below
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(fleet.drain_worker(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop_load.store(true);
  load.join();

  EXPECT_EQ(answered, submitted) << "drain lost requests";
  const int new_owner = fleet.shard_owner(1);
  EXPECT_NE(new_owner, 1) << "shard was not handed away";
  EXPECT_NE(new_owner, -1);
  EXPECT_FALSE(fleet.worker_up(1)) << "drained worker must stay retired";
  const fleet::FleetCounters c = fleet.counters();
  EXPECT_EQ(c.drains, 1u);
  EXPECT_EQ(c.deaths, 0u);
  // The shard still serves, now on the sibling.
  const fleet::BatchResult r = fleet.submit(1, {"/about.txt"});
  EXPECT_EQ(r.lost, 0);
  ASSERT_EQ(r.statuses.size(), 1u);
  EXPECT_EQ(r.statuses[0], 200);
  fleet.stop();
}

// Satellite: the structured double-fault diagnostic written by the dying
// worker via async-signal-safe write(2) is captured off its stderr pipe
// and surfaced by the supervisor.
TEST(FleetDiagnosticTest, DoubleFaultDiagnosticIsCaptured) {
  FleetSupervisor fleet(fast_config());
  ASSERT_TRUE(fleet.start());
  ASSERT_TRUE(wait_for([&] { return fleet_at_full_strength(fleet); }, 5000));
  ASSERT_TRUE(fleet.kill_worker(0, KillMode::kExit70));
  ASSERT_TRUE(wait_for(
      [&] { return !fleet.last_diagnostic(0).empty(); }, 5000));
  const std::string diag = fleet.last_diagnostic(0);
  EXPECT_NE(diag.find("double fault"), std::string::npos) << diag;
  EXPECT_NE(diag.find("site="), std::string::npos) << diag;
  EXPECT_NE(diag.find("depth="), std::string::npos) << diag;
  // The worker restarts after the capture.
  ASSERT_TRUE(wait_for([&] { return fleet.worker_up(0); }, 5000));
  fleet.stop();
}

// Durable mode, serving continuity: a worker's acked SETs are readable
// again from the restarted incarnation (host-backed AOF replay), the
// "$-1" miss maps to 404, and shard handoff is refused because durable
// shards are pinned to their backing directory.
TEST(FleetDurableTest, AckedSetsServeAcrossWorkerRestart) {
  const std::string dir = make_temp_dir();
  ASSERT_FALSE(dir.empty());
  FleetConfig config = fast_config();
  config.workers = 2;
  config.durable = true;
  config.durable_dir = dir;
  {
    FleetSupervisor fleet(config);
    ASSERT_TRUE(fleet.start());
    ASSERT_TRUE(wait_for([&] { return fleet_at_full_strength(fleet); }, 5000));

    fleet::BatchResult r = fleet.submit(0, {"SET alpha one", "SET beta two"});
    EXPECT_EQ(r.lost, 0);
    ASSERT_EQ(r.statuses.size(), 2u);
    EXPECT_EQ(r.statuses[0], 200);
    EXPECT_EQ(r.statuses[1], 200);

    ASSERT_TRUE(fleet.kill_worker(0, KillMode::kSigkill));
    ASSERT_TRUE(wait_for([&] { return !fleet.worker_up(0); }, 5000));
    ASSERT_TRUE(wait_for([&] { return fleet.worker_up(0); }, 5000));

    r = fleet.submit(0, {"GET alpha", "GET nothere"});
    EXPECT_EQ(r.lost, 0);
    ASSERT_EQ(r.statuses.size(), 2u);
    EXPECT_EQ(r.statuses[0], 200) << "acked SET lost across a SIGKILL";
    EXPECT_EQ(r.statuses[1], 404);

    EXPECT_FALSE(fleet.drain_worker(1)) << "durable shards must not hand off";
    fleet.stop();
  }
  // Post-mortem: the same keys recover from the host directory alone.
  std::vector<std::map<std::string, std::string>> acked(2);
  acked[0] = {{"alpha", "one"}, {"beta", "two"}};
  const FleetDurabilityAudit audit = audit_fleet_durability(dir, acked);
  EXPECT_EQ(audit.checked, 2u);
  EXPECT_EQ(audit.missing, 0u)
      << (audit.examples.empty() ? "" : audit.examples[0]);
  remove_tree(dir);
}

// The durable acceptance-criteria test: a 4-shard durable fleet under
// multi-threaded unique-SET load while one worker is murdered per
// interval for >= 12 cycles, alternating the three unplanned-death
// shapes. Afterwards every shard is recovered from host media by a fresh
// instance and every single acked SET must read back — zero acked-write
// loss.
TEST(FleetDurableKillCycleTest, NoAckedWriteLostAcrossTwelveKills) {
  const std::string dir = make_temp_dir();
  ASSERT_FALSE(dir.empty());
  FleetConfig config = fast_config();
  config.durable = true;
  config.durable_dir = dir;
  FleetSupervisor fleet(config);
  ASSERT_TRUE(fleet.start());
  ASSERT_TRUE(wait_for([&] { return fleet_at_full_strength(fleet); }, 5000));

  std::atomic<bool> stop_chaos{false};
  std::atomic<int> kills{0};
  std::thread chaos([&] {
    const KillMode cycle[] = {KillMode::kExit70, KillMode::kSigkill,
                              KillMode::kHang};
    int i = 0;
    while (!stop_chaos.load() && kills.load() < 12) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      if (fleet.kill_worker(i % fleet.worker_count(), cycle[i % 3]))
        kills.fetch_add(1);
      ++i;
    }
  });

  FleetLoadSpec spec;
  spec.threads = 4;
  spec.batch_size = 8;
  spec.duration_ms = 2500;
  const FleetKvLoadResult result = run_fleet_kv_load(fleet, spec);
  stop_chaos.store(true);
  chaos.join();

  EXPECT_GE(kills.load(), 10) << "chaos must land at least 10 kill cycles";
  EXPECT_EQ(result.lost, 0u);
  EXPECT_GT(result.acked, 100u) << "load barely ran";

  ASSERT_TRUE(wait_for([&] { return fleet_at_full_strength(fleet); }, 5000))
      << "fleet did not return to full strength";
  const fleet::FleetCounters c = fleet.counters();
  EXPECT_GE(c.deaths, 10u);
  EXPECT_GE(c.restarts, c.deaths);
  EXPECT_EQ(c.quarantines, 0u);
  fleet.stop();

  const FleetDurabilityAudit audit =
      audit_fleet_durability(dir, result.acked_sets);
  EXPECT_EQ(audit.checked, result.acked);
  EXPECT_EQ(audit.missing, 0u)
      << (audit.examples.empty() ? "" : audit.examples[0]);
  remove_tree(dir);
}

}  // namespace
}  // namespace fir
