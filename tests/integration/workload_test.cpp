// Workload driver coverage across all five servers.
#include <gtest/gtest.h>

#include "apps/apachette.h"
#include "apps/littlehttpd.h"
#include "apps/minikv.h"
#include "apps/minipg.h"
#include "apps/miniginx.h"
#include "workload/drivers.h"

namespace fir {
namespace {

TxManagerConfig cfg(PolicyKind kind) {
  TxManagerConfig c;
  c.policy.kind = kind;
  return c;
}

template <typename ServerT>
void expect_suite_clean(PolicyKind kind, int iterations = 2) {
  ServerT server(cfg(kind));
  ASSERT_TRUE(server.start(0).is_ok());
  const WorkloadResult result = run_suite_for(server, iterations);
  EXPECT_FALSE(result.server_died) << result.death_reason;
  EXPECT_GT(result.responses_2xx, 0u);
  EXPECT_EQ(result.transport_failures, 0u);
  EXPECT_EQ(result.responses_total(), result.requests_sent);
}

TEST(WorkloadTest, MiniginxSuiteUnderEveryPolicy) {
  expect_suite_clean<Miniginx>(PolicyKind::kUnprotected);
  expect_suite_clean<Miniginx>(PolicyKind::kStmOnly);
  expect_suite_clean<Miniginx>(PolicyKind::kNaiveHtm);
  expect_suite_clean<Miniginx>(PolicyKind::kAdaptive);
  expect_suite_clean<Miniginx>(PolicyKind::kHtmOnly);
}

TEST(WorkloadTest, ApachetteSuite) {
  expect_suite_clean<Apachette>(PolicyKind::kAdaptive);
}

TEST(WorkloadTest, LittlehttpdSuite) {
  expect_suite_clean<Littlehttpd>(PolicyKind::kAdaptive);
}

TEST(WorkloadTest, MinikvSuite) {
  Minikv server(cfg(PolicyKind::kAdaptive));
  ASSERT_TRUE(server.start(0).is_ok());
  const WorkloadResult result = run_kv_suite(server, 3);
  EXPECT_FALSE(result.server_died);
  EXPECT_GT(result.responses_2xx, 20u);
  EXPECT_GT(result.responses_5xx, 0u);  // suite includes error probes
}

TEST(WorkloadTest, MinipgSuite) {
  Minipg server(cfg(PolicyKind::kAdaptive));
  ASSERT_TRUE(server.start(0).is_ok());
  const WorkloadResult result = run_pg_suite(server, 3);
  EXPECT_FALSE(result.server_died);
  EXPECT_GT(result.responses_2xx, 15u);
  EXPECT_GT(result.responses_4xx, 0u);
}

TEST(WorkloadTest, HttpLoadSaturatesAndCompletes) {
  Miniginx server(cfg(PolicyKind::kAdaptive));
  ASSERT_TRUE(server.start(0).is_ok());
  Rng rng(7);
  const WorkloadResult result = run_http_load(server, 200, 8, rng);
  EXPECT_FALSE(result.server_died);
  EXPECT_GE(result.responses_2xx, 190u);
  EXPECT_GT(result.throughput_rps(), 0.0);
}

TEST(WorkloadTest, KvLoadCompletes) {
  Minikv server(cfg(PolicyKind::kAdaptive));
  ASSERT_TRUE(server.start(0).is_ok());
  Rng rng(11);
  const WorkloadResult result = run_kv_load(server, 300, 4, rng);
  EXPECT_FALSE(result.server_died);
  EXPECT_GE(result.responses_2xx, 290u);
}

TEST(WorkloadTest, PgLoadCompletes) {
  Minipg server(cfg(PolicyKind::kAdaptive));
  ASSERT_TRUE(server.start(0).is_ok());
  Rng rng(13);
  const WorkloadResult result = run_pg_load(server, 200, 4, rng);
  EXPECT_FALSE(result.server_died);
  EXPECT_GE(result.responses_total(), 190u);
}

TEST(WorkloadTest, ProtectionOverheadIsBounded) {
  // Vanilla vs FIRestarter on the same load: the instrumented run must be
  // slower than vanilla but within a sane factor (the Fig. 7 property,
  // loosely bounded for CI stability).
  Rng rng(17);
  Miniginx vanilla(cfg(PolicyKind::kUnprotected));
  ASSERT_TRUE(vanilla.start(0).is_ok());
  const WorkloadResult base = run_http_load(vanilla, 400, 8, rng);

  Rng rng2(17);
  Miniginx protected_server(cfg(PolicyKind::kAdaptive));
  ASSERT_TRUE(protected_server.start(0).is_ok());
  const WorkloadResult fir = run_http_load(protected_server, 400, 8, rng2);

  ASSERT_FALSE(base.server_died);
  ASSERT_FALSE(fir.server_died);
  EXPECT_GT(base.throughput_rps(), 0.0);
  EXPECT_GT(fir.throughput_rps(), 0.0);
  EXPECT_LT(fir.throughput_rps(), base.throughput_rps() * 1.5)
      << "instrumentation cannot make things faster";
}

}  // namespace
}  // namespace fir
