// Chaos property test: under ARBITRARY fault schedules (random marker,
// random fault type, random timing), the protected servers must never
// violate their state invariants — connections balance, heap does not leak
// on recovered paths, the keyspace stays consistent, and the server either
// survives or dies by the documented FatalCrashError channel.
#include <gtest/gtest.h>

#include <map>

#include "apps/minikv.h"
#include "apps/miniginx.h"
#include "common/rng.h"
#include "workload/drivers.h"
#include "workload/kv_client.h"

namespace fir {
namespace {

TxManagerConfig adaptive_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kAdaptive;
  return c;
}

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, MiniginxSurvivesRandomFaultSchedules) {
  Rng rng(GetParam());
  Miniginx server(adaptive_cfg());
  ASSERT_TRUE(server.start(0).is_ok());

  // Register markers via a clean warm-up pass.
  run_http_suite(server, 1);
  const auto& markers = server.fx().hsfi().markers();
  ASSERT_FALSE(markers.empty());

  int fatal_runs = 0;
  for (int round = 0; round < 12; ++round) {
    // Arm a random fault at a random marker (any class — including
    // critical and handler blocks: the invariants must hold regardless).
    const MarkerId target =
        markers[rng.index(markers.size())].id;
    const FaultType type = static_cast<FaultType>(rng.next_below(3));
    server.fx().hsfi().arm(FaultPlan{target, type, CrashKind::kSegv,
                                     rng.next()});
    const WorkloadResult result = run_http_suite(server, 1);
    server.fx().hsfi().disarm();
    if (result.server_died) ++fatal_runs;
  }

  // Invariant 1: the server remains serviceable after the whole schedule.
  const WorkloadResult health = run_http_suite(server, 1);
  EXPECT_FALSE(health.server_died);
  EXPECT_GT(health.responses_2xx, 0u);

  // Invariant 2: with the faults gone and all clients disconnected, the
  // connection accounting converges to balance (dead connections may need
  // several event-loop passes to drain after abandoned iterations).
  for (int pass = 0; pass < 8; ++pass) server.run_once();
  EXPECT_EQ(server.counters().connections_accepted.get(),
            server.counters().connections_closed.get())
      << "seed " << GetParam() << " (fatal runs: " << fatal_runs << ")";
}

TEST_P(ChaosTest, MinikvKeyspaceNeverCorrupts) {
  Rng rng(GetParam());
  Minikv server(adaptive_cfg());
  ASSERT_TRUE(server.start(0).is_ok());

  // Reference model of what MUST be in the store: keys confirmed by +OK.
  std::map<std::string, std::string> confirmed;
  KvClient client(server.fx().env(), server.port());

  run_kv_suite(server, 1);  // register markers
  const auto& markers = server.fx().hsfi().markers();

  for (int round = 0; round < 30; ++round) {
    if (rng.chance(0.4)) {
      const MarkerId target = markers[rng.index(markers.size())].id;
      const FaultType type = static_cast<FaultType>(rng.next_below(3));
      server.fx().hsfi().arm(
          FaultPlan{target, type, CrashKind::kSegv, rng.next()});
    } else {
      server.fx().hsfi().disarm();
    }
    const std::string key = "ck" + std::to_string(rng.next_below(12));
    const std::string value = "v" + std::to_string(rng.next_below(1000));

    if (!client.connected() && !client.connect()) continue;
    if (!client.send_command("SET " + key + " " + value)) {
      client.close();
      continue;
    }
    std::string reply;
    int got = 0;
    for (int i = 0; i < 8 && got == 0; ++i) {
      try {
        server.run_once();
      } catch (const FatalCrashError&) {
        break;  // this schedule killed the worker; state checks continue
      }
      got = client.try_read_reply(reply);
    }
    if (got == 1 && reply == "+OK") confirmed[key] = value;
    if (got != 1) client.close();
  }
  server.fx().hsfi().disarm();

  // Every acknowledged write must be present with its exact value
  // (acknowledged-durability invariant: a rollback may only lose writes
  // that were never confirmed to the client).
  KvClient verifier(server.fx().env(), server.port());
  for (const auto& [key, value] : confirmed) {
    ASSERT_TRUE(verifier.connected() || verifier.connect());
    ASSERT_TRUE(verifier.send_command("GET " + key));
    std::string reply;
    int got = 0;
    for (int i = 0; i < 8 && got == 0; ++i) {
      server.run_once();
      got = verifier.try_read_reply(reply);
    }
    ASSERT_EQ(got, 1) << key;
    EXPECT_EQ(reply, value) << "seed " << GetParam() << " key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(0xC0FFEEull, 0xBEEFull, 42ull,
                                           7777ull, 123456789ull));

}  // namespace
}  // namespace fir
