// Crash-restart durability: WAL replay (minipg) and AOF replay (minikv)
// across simulated process restarts — the "long-lived non-ephemeral state"
// scenario of the paper's introduction, where plain restarts lose data and
// FIRestarter's in-process recovery avoids the restart entirely. These
// tests cover the fallback path: when a fault IS unrecoverable, a fresh
// instance inheriting the durable files recovers the committed state.
#include <gtest/gtest.h>

#include "apps/minikv.h"
#include "apps/minipg.h"
#include "common/walrec.h"
#include "workload/kv_client.h"
#include "workload/pg_client.h"

namespace fir {
namespace {

TxManagerConfig cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

std::string pg(Minipg& server, PgClient& client, const std::string& sql) {
  EXPECT_TRUE(client.connected() || client.connect());
  EXPECT_TRUE(client.send_query(sql));
  std::string reply;
  for (int i = 0; i < 8; ++i) {
    server.run_once();
    if (client.try_read_result(reply) == 1) return reply;
  }
  return reply;
}

std::string kv(Minikv& server, KvClient& client, const std::string& line) {
  EXPECT_TRUE(client.connected() || client.connect());
  EXPECT_TRUE(client.send_command(line));
  std::string reply;
  for (int i = 0; i < 8; ++i) {
    server.run_once();
    if (client.try_read_reply(reply) == 1) return reply;
  }
  return reply;
}

TEST(DurabilityTest, MinipgWalReplayRestoresCommittedState) {
  Vfs durable;
  {
    Minipg old_instance(cfg());
    ASSERT_TRUE(old_instance.start(0).is_ok());
    PgClient client(old_instance.fx().env(), old_instance.port());
    pg(old_instance, client, "CREATE TABLE users");
    pg(old_instance, client, "INSERT users alice admin");
    pg(old_instance, client, "INSERT users bob guest");
    pg(old_instance, client, "UPDATE users bob member");
    pg(old_instance, client, "INSERT users carol temp");
    pg(old_instance, client, "DELETE users carol");
    pg(old_instance, client, "CREATE TABLE gone");
    pg(old_instance, client, "DROP TABLE gone");
    // "Process dies": only the durable files survive.
    durable.import_from(old_instance.fx().env().vfs());
    old_instance.stop();
  }

  Minipg fresh(cfg());
  fresh.fx().env().vfs().import_from(durable);
  ASSERT_TRUE(fresh.start(0).is_ok());
  EXPECT_GE(fresh.wal_records_replayed(), 7u);
  PgClient client(fresh.fx().env(), fresh.port());
  EXPECT_EQ(pg(fresh, client, "SELECT users alice"), "admin\n(1 row)");
  EXPECT_EQ(pg(fresh, client, "SELECT users bob"), "member\n(1 row)");
  EXPECT_EQ(pg(fresh, client, "SELECT users carol"), "(0 rows)");
  EXPECT_EQ(pg(fresh, client, "SELECT gone x"),
            "ERROR: relation does not exist");
  // The recovered instance is fully writable.
  EXPECT_EQ(pg(fresh, client, "INSERT users dave new"), "INSERT 0 1");
}

TEST(DurabilityTest, MinipgFreshDirectoryReplaysNothing) {
  Minipg server(cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  EXPECT_EQ(server.wal_records_replayed(), 0u);
}

TEST(DurabilityTest, MinikvAofReplayRestoresKeyspace) {
  Vfs durable;
  {
    Minikv old_instance(cfg());
    old_instance.enable_aof(true);
    ASSERT_TRUE(old_instance.start(0).is_ok());
    KvClient client(old_instance.fx().env(), old_instance.port());
    EXPECT_EQ(kv(old_instance, client, "SET user:1 alice"), "+OK");
    EXPECT_EQ(kv(old_instance, client, "SET user:2 bob"), "+OK");
    EXPECT_EQ(kv(old_instance, client, "SET user:1 alice-v2"), "+OK");
    EXPECT_EQ(kv(old_instance, client, "DEL user:2"), ":1");
    durable.import_from(old_instance.fx().env().vfs());
    old_instance.stop();
  }

  Minikv fresh(cfg());
  fresh.enable_aof(true);
  fresh.fx().env().vfs().import_from(durable);
  ASSERT_TRUE(fresh.start(0).is_ok());
  EXPECT_GE(fresh.aof_records_replayed(), 3u);
  KvClient client(fresh.fx().env(), fresh.port());
  EXPECT_EQ(kv(fresh, client, "GET user:1"), "alice-v2");
  EXPECT_EQ(kv(fresh, client, "GET user:2"), "$-1");
  // New writes continue appending to the inherited AOF.
  EXPECT_EQ(kv(fresh, client, "SET user:3 carol"), "+OK");
  auto aof = fresh.fx().env().vfs().lookup("/data/appendonly.aof");
  ASSERT_NE(aof, nullptr);
  const std::string content(aof->data.begin(), aof->data.end());
  EXPECT_NE(content.find("SET user:3 carol"), std::string::npos);
}

TEST(DurabilityTest, MinikvTruncatesTornAofTailOnRecovery) {
  Vfs durable;
  {
    Minikv old_instance(cfg());
    old_instance.enable_aof(true);
    ASSERT_TRUE(old_instance.start(0).is_ok());
    KvClient client(old_instance.fx().env(), old_instance.port());
    EXPECT_EQ(kv(old_instance, client, "SET a 1"), "+OK");
    EXPECT_EQ(kv(old_instance, client, "SET b 2"), "+OK");
    // Torn final append: only half of the next record reaches the media.
    auto aof = old_instance.fx().env().vfs().lookup("/data/appendonly.aof");
    ASSERT_NE(aof, nullptr);
    char rec[64];
    const std::size_t n = walrec_encode(rec, sizeof(rec), "SET c 3");
    ASSERT_GT(n, 0u);
    aof->data.insert(aof->data.end(), rec, rec + n / 2);
    durable.import_from(old_instance.fx().env().vfs());
    old_instance.stop();
  }

  Minikv fresh(cfg());
  fresh.enable_aof(true);
  fresh.fx().env().vfs().import_from(durable);
  ASSERT_TRUE(fresh.start(0).is_ok());
  EXPECT_EQ(fresh.aof_records_replayed(), 2u);
  EXPECT_GT(fresh.aof_torn_bytes(), 0u);
  KvClient client(fresh.fx().env(), fresh.port());
  EXPECT_EQ(kv(fresh, client, "GET a"), "1");
  EXPECT_EQ(kv(fresh, client, "GET b"), "2");
  EXPECT_EQ(kv(fresh, client, "GET c"), "$-1");
  // The repaired log accepts new appends and replays cleanly again.
  EXPECT_EQ(kv(fresh, client, "SET c 3"), "+OK");
  Vfs durable2;
  durable2.import_from(fresh.fx().env().vfs());
  Minikv again(cfg());
  again.enable_aof(true);
  again.fx().env().vfs().import_from(durable2);
  ASSERT_TRUE(again.start(0).is_ok());
  EXPECT_EQ(again.aof_torn_bytes(), 0u);
  EXPECT_EQ(again.aof_records_replayed(), 3u);
}

TEST(DurabilityTest, MinipgDropsCorruptWalTail) {
  Vfs durable;
  {
    Minipg old_instance(cfg());
    ASSERT_TRUE(old_instance.start(0).is_ok());
    PgClient client(old_instance.fx().env(), old_instance.port());
    pg(old_instance, client, "CREATE TABLE t");
    pg(old_instance, client, "INSERT t k1 v1");
    pg(old_instance, client, "INSERT t k2 v2");
    // Bit rot in the final record's payload: its checksum no longer
    // verifies, so recovery must stop before it.
    auto wal = old_instance.fx().env().vfs().lookup(
        "/pg/pg_wal/000000010000000000000001");
    ASSERT_NE(wal, nullptr);
    wal->data.back() = static_cast<char>(wal->data.back() ^ 0x40);
    durable.import_from(old_instance.fx().env().vfs());
    old_instance.stop();
  }

  Minipg fresh(cfg());
  fresh.fx().env().vfs().import_from(durable);
  ASSERT_TRUE(fresh.start(0).is_ok());
  EXPECT_EQ(fresh.wal_records_replayed(), 2u);
  EXPECT_GT(fresh.wal_torn_bytes(), 0u);
  PgClient client(fresh.fx().env(), fresh.port());
  EXPECT_EQ(pg(fresh, client, "SELECT t k1"), "v1\n(1 row)");
  EXPECT_EQ(pg(fresh, client, "SELECT t k2"), "(0 rows)");
  // The repaired WAL keeps logging.
  EXPECT_EQ(pg(fresh, client, "INSERT t k3 v3"), "INSERT 0 1");
}

TEST(DurabilityTest, FsyncPolicyAlwaysMakesAckedSetsCrashDurable) {
  Minikv server(cfg());
  server.enable_aof(true);  // policy defaults to always
  ASSERT_TRUE(server.start(0).is_ok());
  KvClient client(server.fx().env(), server.port());
  EXPECT_EQ(kv(server, client, "SET k v"), "+OK");
  // The ack implies the record is already on stable media: it appears in a
  // crash image taken with no further barriers.
  const Vfs image = server.fx().env().vfs().crash_image();
  auto aof = image.lookup("/data/appendonly.aof");
  ASSERT_NE(aof, nullptr);
  const std::string content(aof->data.begin(), aof->data.end());
  EXPECT_NE(content.find("SET k v"), std::string::npos);
}

TEST(DurabilityTest, FsyncPolicyNoLeavesTailVolatile) {
  Minikv server(cfg());
  server.enable_aof(true);
  server.set_fsync_policy(FsyncPolicy::kNo);
  ASSERT_TRUE(server.start(0).is_ok());
  KvClient client(server.fx().env(), server.port());
  EXPECT_EQ(kv(server, client, "SET k v"), "+OK");
  // No barrier ever ran: a crash at this point loses the appended record.
  const Vfs image = server.fx().env().vfs().crash_image();
  auto aof = image.lookup("/data/appendonly.aof");
  if (aof != nullptr) {
    const std::string content(aof->data.begin(), aof->data.end());
    EXPECT_EQ(content.find("SET k v"), std::string::npos);
  }
}

double metric_value(Server& server, const std::string& name) {
  for (const auto& sample : server.fx().mgr().obs().metrics().snapshot())
    if (sample.name == name) return sample.value;
  return -1.0;
}

TEST(DurabilityTest, GroupCommitAckedSetsAreCrashDurable) {
  // Policy "batch" alone leaves acked SETs volatile; group commit upgrades
  // it back to acked-implies-durable by holding the ack until the barrier.
  Minikv server(cfg());
  server.enable_aof(true);
  server.set_fsync_policy(FsyncPolicy::kBatch);
  server.set_group_commit({8, 0});
  ASSERT_TRUE(server.start(0).is_ok());
  KvClient client(server.fx().env(), server.port());
  EXPECT_EQ(kv(server, client, "SET k v"), "+OK");
  const Vfs image = server.fx().env().vfs().crash_image();
  auto aof = image.lookup("/data/appendonly.aof");
  ASSERT_NE(aof, nullptr);
  const std::string content(aof->data.begin(), aof->data.end());
  EXPECT_NE(content.find("SET k v"), std::string::npos);
  // The ack was queued behind the barrier, and the persist.* counters are
  // visible through the metrics snapshot.
  EXPECT_GE(metric_value(server, "persist.acks_deferred"), 1.0);
  EXPECT_GE(metric_value(server, "persist.group_commits"), 1.0);
  EXPECT_GE(metric_value(server, "persist.barriers"), 1.0);
}

TEST(DurabilityTest, GroupCommitRetiresPipelinedBatchWithOneBarrier) {
  Minikv server(cfg());
  server.enable_aof(true);
  server.set_fsync_policy(FsyncPolicy::kBatch);
  server.set_group_commit({16, 0});
  ASSERT_TRUE(server.start(0).is_ok());
  KvClient client(server.fx().env(), server.port());
  ASSERT_TRUE(client.connect());
  const PersistStats before = server.fx().env().vfs().persist_stats();
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(client.send_command("SET k" + std::to_string(i) + " v"));
  std::string reply;
  int acked = 0;
  for (int pass = 0; pass < 32 && acked < 8; ++pass) {
    server.run_once();
    while (client.try_read_reply(reply) == 1) {
      EXPECT_EQ(reply, "+OK");
      ++acked;
    }
  }
  EXPECT_EQ(acked, 8);
  // One group barrier covered the whole pipelined batch (policy "always"
  // would have taken eight).
  const PersistStats after = server.fx().env().vfs().persist_stats();
  EXPECT_LE(after.barriers - before.barriers, 2u);
  EXPECT_GE(after.barriers - before.barriers, 1u);
}

TEST(DurabilityTest, GroupCommitAckedInsertsSurviveRestart) {
  // End to end for minipg: acks deferred under batch+gc, retired by the
  // COMMIT barrier, and the WAL replays them into a fresh instance.
  Vfs durable;
  {
    Minipg old_instance(cfg());  // minipg defaults to policy "batch"
    old_instance.set_group_commit({8, 0});
    ASSERT_TRUE(old_instance.start(0).is_ok());
    PgClient client(old_instance.fx().env(), old_instance.port());
    pg(old_instance, client, "CREATE TABLE users");
    pg(old_instance, client, "BEGIN");
    EXPECT_EQ(pg(old_instance, client, "INSERT users alice admin"),
              "INSERT 0 1");
    EXPECT_EQ(pg(old_instance, client, "COMMIT"), "COMMIT");
    EXPECT_GE(metric_value(old_instance, "persist.acks_deferred"), 1.0);
    durable.import_from(old_instance.fx().env().vfs());
    old_instance.stop();
  }
  Minipg fresh(cfg());
  fresh.fx().env().vfs().import_from(durable);
  ASSERT_TRUE(fresh.start(0).is_ok());
  PgClient client(fresh.fx().env(), fresh.port());
  EXPECT_EQ(pg(fresh, client, "SELECT users alice"), "admin\n(1 row)");
}

TEST(DurabilityTest, GroupCommitStopFlushesPendingAcks) {
  // stop() retires a non-empty group so no connection is left waiting on a
  // reply that never comes and no acked record is left unsynced.
  Minikv server(cfg());
  server.enable_aof(true);
  server.set_fsync_policy(FsyncPolicy::kBatch);
  // Large window: the end-of-pass retire stays idle, stop() must flush.
  server.set_group_commit({16, 1000000});
  ASSERT_TRUE(server.start(0).is_ok());
  KvClient client(server.fx().env(), server.port());
  ASSERT_TRUE(client.connect());
  ASSERT_TRUE(client.send_command("SET held v"));
  for (int i = 0; i < 4; ++i) server.run_once();
  std::string reply;
  EXPECT_EQ(client.try_read_reply(reply), 0);  // ack still queued
  server.stop();
  int rc = client.try_read_reply(reply);
  EXPECT_EQ(rc, 1);
  EXPECT_EQ(reply, "+OK");
  const Vfs image = server.fx().env().vfs().crash_image();
  auto aof = image.lookup("/data/appendonly.aof");
  ASSERT_NE(aof, nullptr);
  const std::string content(aof->data.begin(), aof->data.end());
  EXPECT_NE(content.find("SET held v"), std::string::npos);
}

TEST(DurabilityTest, RdbSaveIsNeverHalfReplacedInCrashImage) {
  Minikv server(cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  KvClient client(server.fx().env(), server.port());
  EXPECT_EQ(kv(server, client, "SET k old"), "+OK");
  EXPECT_EQ(kv(server, client, "SAVE"), "+OK");
  EXPECT_EQ(kv(server, client, "SET k new"), "+OK");
  EXPECT_EQ(kv(server, client, "SAVE"), "+OK");
  // The SAVE sequence ends with a directory barrier, so any crash image
  // holds exactly one complete dump — old or new, never a half-replaced
  // mix and never a lingering tmp file alongside a clobbered dump.
  const Vfs image = server.fx().env().vfs().crash_image();
  auto dump = image.lookup("/data/dump.rdb");
  ASSERT_NE(dump, nullptr);
  const std::string content(dump->data.begin(), dump->data.end());
  EXPECT_TRUE(content == "k=old\n" || content == "k=new\n") << content;
  EXPECT_EQ(content, "k=new\n");  // both barriers completed: newest wins
  EXPECT_FALSE(image.exists("/data/dump.rdb.tmp"));
}

TEST(DurabilityTest, AofOffByDefaultWritesNoFile) {
  Minikv server(cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  KvClient client(server.fx().env(), server.port());
  EXPECT_EQ(kv(server, client, "SET k v"), "+OK");
  EXPECT_FALSE(server.fx().env().vfs().exists("/data/appendonly.aof"));
}

TEST(DurabilityTest, AcknowledgedAofWritesSurviveRecoveredCrashes) {
  // A SET acknowledged after its AOF append must be replayable even if a
  // later crash storm hits the server: the append is an irrecoverable
  // write, so a rollback can never un-log it after the client saw +OK.
  Minikv server(cfg());
  server.enable_aof(true);
  ASSERT_TRUE(server.start(0).is_ok());
  KvClient client(server.fx().env(), server.port());
  EXPECT_EQ(kv(server, client, "SET durable yes"), "+OK");

  // Persistent crash in the SET path: subsequent SETs divert/drop.
  server.fx().hsfi().set_profiling(true);
  kv(server, client, "SET probe 1");
  MarkerId target = kInvalidMarker;
  for (const Marker& m : server.fx().hsfi().markers())
    if (m.name == "cmd_set" && m.executions > 0) target = m.id;
  ASSERT_NE(target, kInvalidMarker);
  server.fx().hsfi().arm(
      FaultPlan{target, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
  client.send_command("SET victim x");
  for (int i = 0; i < 8; ++i) server.run_once();
  server.fx().hsfi().disarm();

  Vfs durable;
  durable.import_from(server.fx().env().vfs());
  Minikv fresh(cfg());
  fresh.enable_aof(true);
  fresh.fx().env().vfs().import_from(durable);
  ASSERT_TRUE(fresh.start(0).is_ok());
  KvClient verifier(fresh.fx().env(), fresh.port());
  EXPECT_EQ(kv(fresh, verifier, "GET durable"), "yes");
  EXPECT_EQ(kv(fresh, verifier, "GET probe"), "1");
}

}  // namespace
}  // namespace fir
