// Cross-module integration: servers under injected faults keep serving,
// preserve state, and report correct surface statistics.
#include <gtest/gtest.h>

#include "apps/miniginx.h"
#include "core/analyzer.h"
#include "workload/drivers.h"
#include "workload/http_client.h"

namespace fir {
namespace {

TxManagerConfig adaptive_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kAdaptive;
  c.htm.interrupt_abort_per_store = 1e-5;
  return c;
}

TEST(CrashRecoveryIntegrationTest, SuiteRunsCleanWithoutFaults) {
  Miniginx server(adaptive_cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  const WorkloadResult result = run_http_suite(server, 3);
  EXPECT_FALSE(result.server_died);
  EXPECT_GT(result.responses_2xx, 0u);
  EXPECT_GT(result.responses_4xx, 0u);  // suite probes error paths
  EXPECT_EQ(result.responses_total(), result.requests_sent);
}

TEST(CrashRecoveryIntegrationTest, SurfaceReportReflectsExecution) {
  Miniginx server(adaptive_cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  run_http_suite(server, 2);
  const SurfaceReport report = analyze_surface(server.fx().mgr().sites());
  EXPECT_GT(report.unique_transactions, 10u);
  EXPECT_GT(report.embedded_libcall_sites, 0u);
  // The headline property: recoverable surface above the paper's 77%.
  EXPECT_GT(report.recoverable_fraction(), 0.70);
}

TEST(CrashRecoveryIntegrationTest, PersistentFaultInHandlerKeepsServiceUp) {
  Miniginx server(adaptive_cfg());
  ASSERT_TRUE(server.start(0).is_ok());

  // Profile to find the ssi_expand marker.
  server.fx().hsfi().set_profiling(true);
  run_http_suite(server, 1);
  MarkerId target = kInvalidMarker;
  for (const Marker& m : server.fx().hsfi().markers())
    if (m.name == "ssi_expand" && m.executions > 0) target = m.id;
  ASSERT_NE(target, kInvalidMarker);
  server.fx().hsfi().set_profiling(false);
  server.fx().hsfi().arm(
      FaultPlan{target, FaultType::kPersistentCrash, CrashKind::kSegv, 3});

  // The SSI page now persistently crashes; FIRestarter diverts and the
  // server answers 500 (empty) while other pages stay healthy.
  HttpClient client(server.fx().env(), server.port());
  ASSERT_TRUE(client.connect());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(client.send_request("GET", "/page.shtml"));
    HttpClient::Response response;
    int got = 0;
    for (int i = 0; i < 8 && got == 0; ++i) {
      server.run_once();
      got = client.try_read_response(response);
    }
    ASSERT_EQ(got, 1) << "round " << round;
    EXPECT_EQ(response.status, 500);

    ASSERT_TRUE(client.send_request("GET", "/index.html"));
    got = 0;
    for (int i = 0; i < 8 && got == 0; ++i) {
      server.run_once();
      got = client.try_read_response(response);
    }
    ASSERT_EQ(got, 1);
    EXPECT_EQ(response.status, 200);
  }
  std::uint64_t diversions = 0;
  for (const Site& s : server.fx().mgr().sites().all())
    diversions += s.stats.diversions;
  EXPECT_GE(diversions, 3u);
}

TEST(CrashRecoveryIntegrationTest, TransientFaultIsInvisibleToClients) {
  Miniginx server(adaptive_cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  server.fx().hsfi().set_profiling(true);
  run_http_suite(server, 1);
  MarkerId target = kInvalidMarker;
  for (const Marker& m : server.fx().hsfi().markers())
    if (m.name == "build_response_headers" && m.executions > 0)
      target = m.id;
  ASSERT_NE(target, kInvalidMarker);
  server.fx().hsfi().arm(
      FaultPlan{target, FaultType::kTransientCrash, CrashKind::kSegv, 1});

  HttpClient client(server.fx().env(), server.port());
  ASSERT_TRUE(client.connect());
  ASSERT_TRUE(client.send_request("GET", "/index.html"));
  HttpClient::Response response;
  int got = 0;
  for (int i = 0; i < 8 && got == 0; ++i) {
    server.run_once();
    got = client.try_read_response(response);
  }
  ASSERT_EQ(got, 1);
  EXPECT_EQ(response.status, 200);  // retry masked the transient crash
  EXPECT_TRUE(server.fx().hsfi().fired());
  // The crash was absorbed either by an STM retry or — when it struck
  // inside a hardware transaction — by the HTM-abort -> STM-re-execution
  // protocol (§IV-C).
  std::uint64_t retries = 0;
  for (const Site& s : server.fx().mgr().sites().all())
    retries += s.stats.retries;
  EXPECT_GE(retries + server.fx().mgr().htm_stats().aborted_explicit, 1u);
}

TEST(CrashRecoveryIntegrationTest, RecoveredServerStateStaysConsistent) {
  Miniginx server(adaptive_cfg());
  ASSERT_TRUE(server.start(0).is_ok());
  server.fx().hsfi().set_profiling(true);
  run_http_suite(server, 1);
  const auto accepted_before =
      server.counters().connections_accepted.get();
  const auto closed_before = server.counters().connections_closed.get();
  EXPECT_EQ(accepted_before, closed_before);  // suite drained cleanly

  MarkerId target = kInvalidMarker;
  for (const Marker& m : server.fx().hsfi().markers())
    if (m.name == "parse_request" && m.executions > 0) target = m.id;
  ASSERT_NE(target, kInvalidMarker);
  server.fx().hsfi().arm(
      FaultPlan{target, FaultType::kPersistentCrash, CrashKind::kSegv, 5});
  const WorkloadResult result = run_http_suite(server, 1);
  EXPECT_FALSE(result.server_died);
  server.fx().hsfi().disarm();

  // Connection accounting still balances after recovery churn.
  server.run_once();
  EXPECT_EQ(server.counters().connections_accepted.get(),
            server.counters().connections_closed.get());
}

}  // namespace
}  // namespace fir
