// Concurrent crash containment: a miniginx worker pool under real client
// threads. One worker is steered into the §VI-F SSI NULL-dereference on
// every request while its siblings serve clean traffic; the recovery
// runtime must confine every crash/recovery episode to the faulting
// worker's thread — the crash client sees diverted 500s, the sibling
// clients lose NOTHING (no transport failures, no dropped requests, no
// dead workers). The death-test variant runs the same scenario with the
// unpatched bug (a genuine kernel SIGSEGV) under FIR_SIGNALS semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "apps/miniginx.h"
#include "workload/concurrent.h"

namespace fir {
namespace {

using ::testing::ExitedWithCode;

TEST(ThreadedRecoveryTest, CrashingWorkerDoesNotDropSiblingRequests) {
  Miniginx server;
  server.enable_ssi_null_bug(true);
  ASSERT_TRUE(server.start(8080).is_ok());
  ASSERT_TRUE(server.start_workers(4).is_ok());
  ASSERT_EQ(server.worker_count(), 4);

  // Client 0 hammers worker 0 with the crashing SSI page (100 recovery
  // episodes, each a rollback -> retry -> divert sequence on that worker's
  // thread); clients 1-3 run clean traffic on the sibling workers.
  std::vector<ThreadedClientSpec> specs;
  specs.push_back({server.worker_port(0), "/broken.shtml", 100});
  for (int i = 1; i < 4; ++i)
    specs.push_back({server.worker_port(i), "/index.html", 100});
  const ThreadedLoadResult result = run_threaded_http_load(server, specs);

  // Every crashing request was answered (with the diverted 500), every
  // sibling request succeeded, and no request anywhere was dropped.
  EXPECT_EQ(result.clients[0].responses_5xx, 100u);
  EXPECT_EQ(result.clients[0].transport_failures, 0u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(result.clients[i].responses_2xx, 100u) << "sibling " << i;
    EXPECT_EQ(result.clients[i].transport_failures, 0u) << "sibling " << i;
  }
  EXPECT_EQ(result.total_responses(), result.total_sent());
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(server.worker_alive(i)) << "worker " << i;

  // 100 episodes, each: one retry of the transient hypothesis, then the
  // diversion that injects the pread error.
  obs::MetricsRegistry& reg = server.fx().mgr().metrics();
  EXPECT_GE(reg.counter("recovery.diversions").value(), 100u);
  EXPECT_EQ(reg.counter("recovery.double_faults").value(), 0u);
  EXPECT_EQ(reg.counter("recovery.fatal").value(), 0u);

  server.stop();
  const ServerCounters totals = server.aggregated_counters();
  EXPECT_GE(totals.requests_ok.get(), 300u);
  EXPECT_GE(totals.responses_5xx.get(), 100u);
}

TEST(ThreadedRecoveryTest, SimultaneousCrashesOnEveryWorkerAreContained) {
  Miniginx server;
  server.enable_ssi_null_bug(true);
  ASSERT_TRUE(server.start(8080).is_ok());
  ASSERT_TRUE(server.start_workers(4).is_ok());

  // All four workers crash concurrently on every request: recoveries run
  // in parallel on four threads against the shared site table, policy and
  // recovery log. Every request must still come back as a diverted 500.
  std::vector<ThreadedClientSpec> specs;
  for (int i = 0; i < 4; ++i)
    specs.push_back({server.worker_port(i), "/broken.shtml", 50});
  const ThreadedLoadResult result = run_threaded_http_load(server, specs);

  EXPECT_EQ(result.total_5xx(), 200u);
  EXPECT_EQ(result.total_transport_failures(), 0u);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(server.worker_alive(i)) << "worker " << i;
  EXPECT_EQ(
      server.fx().mgr().metrics().counter("recovery.double_faults").value(),
      0u);
  server.stop();
}

TEST(ThreadedRecoveryTest, WorkerPoolLifecycleIsGuarded) {
  Miniginx server;
  EXPECT_FALSE(server.start_workers(2).is_ok());  // start() first
  ASSERT_TRUE(server.start(8080).is_ok());
  EXPECT_FALSE(server.start_workers(0).is_ok());  // n must be positive
  ASSERT_TRUE(server.start_workers(2).is_ok());
  EXPECT_FALSE(server.start_workers(2).is_ok());  // already running
  EXPECT_EQ(server.worker_count(), 2);
  server.stop_workers();
  EXPECT_EQ(server.worker_count(), 0);
  // Restartable after a clean stop.
  ASSERT_TRUE(server.start_workers(3).is_ok());
  EXPECT_EQ(server.worker_count(), 3);
  server.stop();
  EXPECT_EQ(server.worker_count(), 0);
}

// The unpatched nginx 1.11.0 ticket #1263 shape: the SSI NULL result is
// dereferenced by an actual load, so each crash arrives as a kernel
// SIGSEGV on the faulting worker's thread and recovery runs through the
// signal channel (per-thread sigaltstack, per-thread dispatch). The suite
// name carries both "CrashSignal" and "DeathTest" so the UBSan and TSan CI
// jobs exclude it (deliberate UB; fork + signal-longjmp recovery).
TEST(ThreadedCrashSignalDeathTest, HardNullBugIsContainedToItsWorker) {
  EXPECT_EXIT(
      {
        TxManagerConfig c;
        c.policy.kind = PolicyKind::kStmOnly;
        c.real_signals = true;
        Miniginx server(c);
        server.enable_hard_ssi_null_bug(true);
        if (!server.start(8080).is_ok()) std::_Exit(2);
        if (!server.start_workers(4).is_ok()) std::_Exit(3);

        std::vector<ThreadedClientSpec> specs;
        specs.push_back({server.worker_port(0), "/broken.shtml", 20});
        for (int i = 1; i < 4; ++i)
          specs.push_back({server.worker_port(i), "/index.html", 20});
        const ThreadedLoadResult result = run_threaded_http_load(server, specs);

        bool ok = result.clients[0].responses_5xx == 20 &&
                  result.total_transport_failures() == 0;
        for (int i = 1; i < 4; ++i)
          ok = ok && result.clients[i].responses_2xx == 20;
        for (int i = 0; i < 4; ++i) ok = ok && server.worker_alive(i);
        server.stop();
        std::_Exit(ok ? 0 : 1);
      },
      ExitedWithCode(0), "");
}

}  // namespace
}  // namespace fir
