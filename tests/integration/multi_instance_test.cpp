// Multiple protected instances in one process (prefork model, SVII):
// the process-global crash channel and store gate must always route to the
// instance whose transaction is open. Regression test for the handler-
// ownership bug the prefork example exposed.
#include <gtest/gtest.h>

#include "apps/minikv.h"
#include "apps/miniginx.h"
#include "workload/http_client.h"
#include "workload/kv_client.h"

namespace fir {
namespace {

TxManagerConfig stm_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;
  return c;
}

TEST(MultiInstanceTest, CrashRoutesToTheInstanceWithTheOpenTransaction) {
  // Construct managers in an order that leaves the WRONG one as the
  // initially-registered crash handler.
  Fx first(stm_cfg());
  Fx second(stm_cfg());  // constructor leaves `second` owning the globals

  FIR_ANCHOR(first);
  const int fd = FIR_SOCKET(first);  // first's gate must claim the channel
  if (fd >= 0) raise_crash(CrashKind::kSegv);
  EXPECT_EQ(fd, -1);
  EXPECT_EQ(first.err(), EMFILE);
  EXPECT_EQ(first.env().open_fd_count(), 0u);
  FIR_QUIESCE(first);
  // `second` was never involved.
  EXPECT_EQ(second.mgr().recovery_log().size(), 0u);
  EXPECT_EQ(first.mgr().recovery_log().size(), 2u);
}

TEST(MultiInstanceTest, InterleavedInstancesRecoverIndependently) {
  Fx a(stm_cfg());
  Fx b(stm_cfg());
  tracked<int> state_a, state_b;
  state_a.init(0);
  state_b.init(0);

  for (int round = 0; round < 5; ++round) {
    {
      FIR_ANCHOR(a);
      const int fd = FIR_SOCKET(a);
      if (fd >= 0) {
        state_a += 1;
        raise_crash(CrashKind::kSegv);  // persistent in a's domain
      }
      FIR_QUIESCE(a);
    }
    {
      FIR_ANCHOR(b);
      const int fd = FIR_SOCKET(b);
      EXPECT_GE(fd, 0);  // b is healthy
      state_b += 1;
      FIR_QUIESCE(b);
      b.env().close(fd);
    }
  }
  EXPECT_EQ(static_cast<int>(state_a), 0);  // every round rolled back
  EXPECT_EQ(static_cast<int>(state_b), 5);  // untouched by a's recoveries
  std::uint64_t diversions_a = 0;
  for (const Site& s : a.mgr().sites().all())
    diversions_a += s.stats.diversions;
  EXPECT_EQ(diversions_a, 5u);
}

TEST(MultiInstanceTest, TwoServersServeWhileOneRecovers) {
  Miniginx web(stm_cfg());
  Minikv kv(stm_cfg());
  ASSERT_TRUE(web.start(0).is_ok());
  ASSERT_TRUE(kv.start(0).is_ok());
  web.enable_ssi_null_bug(true);

  HttpClient http_client(web.fx().env(), web.port());
  KvClient kv_client(kv.fx().env(), kv.port());

  for (int round = 0; round < 3; ++round) {
    // Crash-recover in the web server...
    ASSERT_TRUE(http_client.connected() || http_client.connect());
    ASSERT_TRUE(http_client.send_request("GET", "/broken.shtml"));
    HttpClient::Response response;
    for (int i = 0; i < 16; ++i) {
      web.run_once();
      if (http_client.try_read_response(response) == 1) break;
    }
    EXPECT_EQ(response.status, 500);

    // ... while the KV server handles writes untouched.
    ASSERT_TRUE(kv_client.connected() || kv_client.connect());
    ASSERT_TRUE(kv_client.send_command("SET r" + std::to_string(round) +
                                       " ok"));
    std::string reply;
    for (int i = 0; i < 16; ++i) {
      kv.run_once();
      if (kv_client.try_read_reply(reply) == 1) break;
    }
    EXPECT_EQ(reply, "+OK");
  }
  EXPECT_EQ(kv.db_size(), 3u);
}

}  // namespace
}  // namespace fir
