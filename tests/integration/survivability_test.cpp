// Survivability campaigns (Table IV shape, scaled for CI): persistent
// fail-stop faults in non-critical paths are overwhelmingly recovered;
// latent faults rarely crash at all.
#include <gtest/gtest.h>

#include "apps/littlehttpd.h"
#include "apps/minikv.h"
#include "apps/miniginx.h"
#include "workload/campaign.h"

namespace fir {
namespace {

TxManagerConfig protected_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kAdaptive;
  return c;
}

template <typename ServerT>
ServerFactory factory_for() {
  return [] {
    auto server = std::make_unique<ServerT>(protected_cfg());
    EXPECT_TRUE(server->start(0).is_ok());
    return std::unique_ptr<Server>(std::move(server));
  };
}

TEST(SurvivabilityTest, ProfilingFindsNonCriticalMarkers) {
  const auto markers = profile_markers(factory_for<Miniginx>());
  EXPECT_GE(markers.size(), 6u);
  for (const Marker& m : markers) {
    EXPECT_FALSE(m.critical_path);
    EXPECT_FALSE(m.error_handler);
  }
}

TEST(SurvivabilityTest, MiniginxPersistentFaultsMostlyRecovered) {
  const CampaignResult result =
      run_campaign(factory_for<Miniginx>(), FaultType::kPersistentCrash);
  ASSERT_GT(result.injected(), 0);
  EXPECT_EQ(result.crashes(), result.triggered());
  // Paper Table IV: Nginx recovered 10/10. Allow a small irrecoverable
  // share (markers inside send()-opened transactions).
  EXPECT_GE(result.recovered() * 100, result.crashes() * 70);
}

TEST(SurvivabilityTest, LittlehttpdHasIrrecoverableShare) {
  const CampaignResult result = run_campaign(factory_for<Littlehttpd>(),
                                             FaultType::kPersistentCrash);
  ASSERT_GT(result.injected(), 0);
  // lighttpd's chunked writer puts a visible share of faults in
  // irrecoverable (send-opened) transactions: recovery < 100% but > 60%.
  EXPECT_GT(result.fatal(), 0);
  EXPECT_GE(result.recovered() * 100, result.crashes() * 60);
}

TEST(SurvivabilityTest, TransientFaultsAlwaysSurvived) {
  const CampaignResult result =
      run_campaign(factory_for<Minikv>(), FaultType::kTransientCrash);
  ASSERT_GT(result.injected(), 0);
  for (const ExperimentRecord& e : result.experiments) {
    if (e.triggered) {
      EXPECT_FALSE(e.fatal) << e.marker_name;
    }
  }
}

TEST(SurvivabilityTest, LatentFaultsRarelyCrash) {
  const CampaignResult result =
      run_campaign(factory_for<Miniginx>(), FaultType::kLatentCorruption);
  ASSERT_GT(result.injected(), 0);
  // Fail-silent faults mostly cause result deviations, not crashes
  // (paper: 2 crashes out of 79 latent injections across all servers).
  EXPECT_LE(result.crashes(), result.injected() / 2);
  for (const ExperimentRecord& e : result.experiments) {
    if (e.crashed) {
      EXPECT_TRUE(e.recovered || e.fatal);
    }
  }
}

}  // namespace
}  // namespace fir
