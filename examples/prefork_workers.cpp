// Multi-process prefork demo (paper SVII, "many servers also provide
// multi-process configurations ... where this limitation would not apply").
//
// FIRestarter's single-threaded scope fits prefork deployments naturally:
// each worker process is an independent protected instance (own virtual OS,
// own recovery runtime, own crash domain). A load balancer spreads requests
// over the workers; a persistent bug in one worker is recovered inside that
// worker without the siblings ever noticing — and even if a fault is
// unrecoverable, the blast radius is one worker.
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/miniginx.h"
#include "workload/http_client.h"

using namespace fir;

namespace {

struct Worker {
  std::unique_ptr<Miniginx> server;
  std::unique_ptr<HttpClient> client;
  std::uint64_t served = 0;
  std::uint64_t errors = 0;
  bool dead = false;
};

int fetch_status(Worker& worker, const char* target) {
  if (!worker.client->connected() && !worker.client->connect()) return -1;
  if (!worker.client->send_request("GET", target)) return -1;
  HttpClient::Response response;
  for (int i = 0; i < 16; ++i) {
    try {
      worker.server->run_once();
    } catch (const FatalCrashError& e) {
      worker.dead = true;  // this worker's crash domain ends here
      return -1;
    }
    if (worker.client->try_read_response(response) == 1)
      return response.status;
  }
  return -1;
}

}  // namespace

int main() {
  constexpr int kWorkers = 4;
  std::vector<Worker> pool(kWorkers);
  for (Worker& worker : pool) {
    worker.server = std::make_unique<Miniginx>();
    if (!worker.server->start(0).is_ok()) return 1;
    worker.server->enable_ssi_null_bug(true);  // the production bug SVI-F
    worker.client = std::make_unique<HttpClient>(
        worker.server->fx().env(), worker.server->port());
  }
  std::printf("prefork: %d miniginx workers, each its own crash domain\n\n",
              kWorkers);

  // Round-robin load: most requests are healthy; every 7th hits the SSI
  // page whose NULL-deref bug crashes the handling worker.
  int rr = 0;
  for (int i = 0; i < 56; ++i) {
    Worker& worker = pool[static_cast<std::size_t>(rr++ % kWorkers)];
    if (worker.dead) continue;
    const char* target = (i % 7 == 6) ? "/broken.shtml" : "/index.html";
    const int status = fetch_status(worker, target);
    if (status == 200) {
      ++worker.served;
    } else {
      ++worker.errors;  // 500s from recovered crashes land here
    }
  }

  std::puts("worker  served-200  recovered-errors  diversions  alive");
  bool all_alive = true;
  std::uint64_t total_diversions = 0;
  for (std::size_t w = 0; w < pool.size(); ++w) {
    std::uint64_t diversions = 0;
    for (const Site& site : pool[w].server->fx().mgr().sites().all())
      diversions += site.stats.diversions;
    total_diversions += diversions;
    std::printf("  %zu        %llu           %llu                %llu        %s\n",
                w, static_cast<unsigned long long>(pool[w].served),
                static_cast<unsigned long long>(pool[w].errors),
                static_cast<unsigned long long>(diversions),
                pool[w].dead ? "NO" : "yes");
    all_alive &= !pool[w].dead;
  }
  std::printf("\nall %d workers survived %llu crash recoveries; the fleet "
              "never lost capacity\n",
              kWorkers, static_cast<unsigned long long>(total_diversions));
  return all_alive && total_diversions >= 8 ? 0 : 1;
}
