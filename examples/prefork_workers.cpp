// Multi-process prefork demo (paper §VII, "many servers also provide
// multi-process configurations ... where this limitation would not apply").
//
// This is the real thing, not a sketch: FleetSupervisor forks four worker
// PROCESSES, each hosting its own miniginx (own virtual OS, own recovery
// runtime, own crash domain), and routes request batches to them over real
// socketpairs. Mid-load we murder workers three different ways — the
// double-fault _exit(70) path, a hard SIGKILL, and a simulated hang — and
// the supervisor restarts each one after backoff while the in-flight
// batches requeue. The demo asserts what the paper's §VII argument
// promises: the fleet ends at full strength and not one request is lost.
#include <chrono>
#include <cstdio>
#include <thread>

#include "apps/supervisor.h"
#include "workload/fleet.h"

using namespace fir;

int main() {
  fleet::FleetConfig config;
  config.workers = 4;
  config.backoff_base_ms = 10;
  config.heartbeat_deadline_ms = 250;  // hangs detected quickly
  fleet::FleetSupervisor fleet(config);
  if (!fleet.start()) {
    std::puts("prefork: failed to fork the fleet");
    return 1;
  }
  std::printf("prefork: %d miniginx worker processes, each its own crash "
              "domain\n\n",
              fleet.worker_count());

  // Chaos alongside the load: one murder per 150 ms, cycling through the
  // three unplanned-death shapes the supervisor classifies.
  bool stop_chaos = false;
  std::thread chaos([&] {
    const fleet::KillMode cycle[] = {fleet::KillMode::kExit70,
                                     fleet::KillMode::kSigkill,
                                     fleet::KillMode::kHang};
    int i = 0;
    while (!stop_chaos) {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      fleet.kill_worker(i % fleet.worker_count(), cycle[i % 3]);
      ++i;
    }
  });

  FleetLoadSpec spec;
  spec.threads = 4;
  spec.duration_ms = 1500;
  spec.batch_size = 8;
  const FleetLoadResult result = run_fleet_http_load(fleet, spec);
  stop_chaos = true;
  chaos.join();

  // Give the last victim time to restart, then audit the fleet.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const fleet::FleetCounters counters = fleet.counters();
  std::puts("worker  alive  shard");
  bool full_strength = true;
  for (int w = 0; w < fleet.worker_count(); ++w) {
    std::printf("  %d     %-5s  %d\n", w, fleet.worker_up(w) ? "yes" : "NO",
                fleet.shard_owner(w));
    full_strength &= fleet.worker_up(w);
  }
  std::printf("\ndeaths=%llu (exit70=%llu sigkill=%llu hang=%llu) "
              "restarts=%llu requeued-batches=%llu\n",
              static_cast<unsigned long long>(counters.deaths),
              static_cast<unsigned long long>(counters.exit70_deaths),
              static_cast<unsigned long long>(counters.signal_deaths),
              static_cast<unsigned long long>(counters.hang_deaths),
              static_cast<unsigned long long>(counters.restarts),
              static_cast<unsigned long long>(counters.requeues));
  std::printf("requests=%llu answered=%llu lost=%llu\n",
              static_cast<unsigned long long>(result.requests),
              static_cast<unsigned long long>(result.answered()),
              static_cast<unsigned long long>(result.lost));
  fleet.stop();

  if (!full_strength) {
    std::puts("\nFAILED: fleet did not return to full strength");
    return 1;
  }
  if (result.lost != 0 || result.answered() != result.requests) {
    std::puts("\nFAILED: requests were lost");
    return 1;
  }
  if (counters.deaths == 0 || counters.restarts < counters.deaths) {
    std::puts("\nFAILED: chaos never landed (or restarts missing)");
    return 1;
  }
  std::printf("\nall %d workers restarted after every death; the fleet lost "
              "zero requests\n",
              fleet.worker_count());
  return 0;
}
