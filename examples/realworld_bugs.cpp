// SVI-F reproduction: the two production bugs the paper demonstrates.
//
//  * nginx 1.11.0 ticket #1263 — NULL pointer dereference in
//    ngx_http_ssi_get_variable(): an SSI page referencing an uninitialized
//    variable crashes the worker. Recovery rolls back to the pread()
//    transaction, injects -1/EINVAL, and the server answers an empty
//    error response.
//  * lighttpd 1.4.44 bug #2780 — mod_webdav_connection_reset() misses a
//    cleanup; a WebDAV request mixed with others on one keep-alive
//    connection leaves a dangling handle whose next use crashes. Recovery
//    diverts at the open64() transaction and the server answers
//    "403 - Forbidden".
//
// With FIR_SIGNALS=1 a third section repeats the nginx scenario with a
// REAL fault: the armed bug performs an actual null-pointer store, the MMU
// raises SIGSEGV, and the sigaltstack handler feeds the kernel-delivered
// fault into the same rollback → compensate → inject sequence.
#include <cstdio>

#include "apps/littlehttpd.h"
#include "apps/miniginx.h"
#include "core/crash.h"
#include "hsfi/hsfi.h"
#include "obs/cli.h"
#include "workload/drivers.h"
#include "workload/http_client.h"

using namespace fir;

namespace {
template <typename ServerT>
HttpClient::Response do_http(ServerT& server, HttpClient& client,
                          const char* method, const char* target) {
  if (!client.connected()) client.connect();
  client.send_request(method, target);
  HttpClient::Response response;
  for (int i = 0; i < 16; ++i) {
    server.run_once();
    if (client.try_read_response(response) == 1) break;
  }
  return response;
}
}  // namespace

int main(int argc, char** argv) {
  obs::apply_cli_flags(&argc, argv);  // --signals, --trace-out=..., etc.
  bool ok = true;

  std::puts("=== nginx ticket #1263: SSI NULL dereference ===");
  {
    Miniginx server;
    if (!server.start(0).is_ok()) return 1;
    server.enable_ssi_null_bug(true);
    HttpClient client(server.fx().env(), server.port());
    const auto crash_page = do_http(server, client, "GET", "/broken.shtml");
    std::printf("GET /broken.shtml -> %d (body %zu bytes) — crash became "
                "an empty error response\n",
                crash_page.status, crash_page.body.size());
    const auto healthy = do_http(server, client, "GET", "/index.html");
    std::printf("GET /index.html   -> %d — worker survived\n",
                healthy.status);
    ok &= crash_page.status == 500 && crash_page.body.empty() &&
          healthy.status == 200;
  }

  std::puts("\n=== lighttpd bug #2780: WebDAV use-after-free ===");
  {
    Littlehttpd server;
    if (!server.start(0).is_ok()) return 1;
    server.enable_webdav_uaf_bug(true);
    HttpClient client(server.fx().env(), server.port());
    const auto dav = do_http(server, client, "PROPFIND", "/dav/notes.txt");
    std::printf("PROPFIND /dav/notes.txt -> %d\n", dav.status);
    const auto mixed = do_http(server, client, "GET", "/index.html");
    std::printf("GET /index.html (same keep-alive conn) -> %d \"%s\" — "
                "crash became a 403\n",
                mixed.status,
                mixed.body.substr(0, 32).c_str());
    HttpClient fresh(server.fx().env(), server.port());
    const auto after = do_http(server, fresh, "GET", "/readme.txt");
    std::printf("GET /readme.txt (fresh conn) -> %d — server survived\n",
                after.status);
    ok &= dav.status == 207 && mixed.status == 403 && after.status == 200;
  }

  std::puts("\n=== real SIGSEGV through the signal channel ===");
  if (!signal_channel_env_enabled()) {
    std::puts("skipped — set FIR_SIGNALS=1 to take an actual MMU fault "
              "instead of a synchronous raise_crash()");
  } else {
    Miniginx server;  // FIR_SIGNALS=1 installs the sigaltstack handlers
    if (!server.start(0).is_ok()) return 1;

    // Profile one workload pass to find the executed SSI-expansion marker,
    // then arm a REAL persistent fault there: a null store, not a report.
    server.fx().hsfi().set_profiling(true);
    run_http_suite(server, 1);
    MarkerId target = kInvalidMarker;
    for (const Marker& m : server.fx().hsfi().markers())
      if (m.name == "ssi_expand" && m.executions > 0) target = m.id;
    if (target == kInvalidMarker) return 1;
    server.fx().hsfi().set_profiling(false);
    server.fx().hsfi().arm(
        FaultPlan{target, FaultType::kRealCrash, CrashKind::kSegv, 1});

    HttpClient client(server.fx().env(), server.port());
    const auto crash_page = do_http(server, client, "GET", "/page.shtml");
    const auto healthy = do_http(server, client, "GET", "/index.html");
    const std::uint64_t caught =
        server.fx().mgr().metrics().counter("recovery.signals_caught").value();
    std::printf("GET /page.shtml  -> %d — %llu real SIGSEGVs caught, "
                "rolled back, diverted\n",
                crash_page.status, static_cast<unsigned long long>(caught));
    std::printf("GET /index.html  -> %d — worker survived an actual "
                "hardware fault\n",
                healthy.status);
    ok &= crash_page.status == 500 && healthy.status == 200 && caught > 0;
  }

  std::printf("\n%s\n", ok ? "both production crashes survived" :
                             "reproduction FAILED");
  return ok ? 0 : 1;
}
