// Web-server recovery demo: a persistent fault in miniginx's SSI feature
// crashes every /page.shtml request; FIRestarter keeps the server alive and
// every other page served.
#include <cstdio>

#include "apps/miniginx.h"
#include "common/log.h"
#include "workload/http_client.h"

using namespace fir;

namespace {
HttpClient::Response fetch(Miniginx& server, HttpClient& client,
                           const char* target) {
  if (!client.connected()) client.connect();
  client.send_request("GET", target);
  HttpClient::Response response;
  for (int i = 0; i < 16; ++i) {
    server.run_once();
    if (client.try_read_response(response) == 1) break;
  }
  return response;
}
}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kInfo);  // show recovery decisions
  Miniginx server;
  if (!server.start(0).is_ok()) return 1;
  HttpClient client(server.fx().env(), server.port());

  std::puts("-- warm up: every page healthy --");
  std::printf("GET /index.html  -> %d\n",
              fetch(server, client, "/index.html").status);
  std::printf("GET /page.shtml  -> %d\n",
              fetch(server, client, "/page.shtml").status);

  // Plant a persistent fatal fault in the SSI expansion block.
  MarkerId target = kInvalidMarker;
  for (const Marker& m : server.fx().hsfi().markers())
    if (m.name == "ssi_expand") target = m.id;
  if (target == kInvalidMarker) return 1;
  server.fx().hsfi().arm(
      FaultPlan{target, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
  std::puts("\n-- persistent fault armed in the SSI feature --");

  for (int round = 0; round < 3; ++round) {
    const auto ssi = fetch(server, client, "/page.shtml");
    const auto ok = fetch(server, client, "/index.html");
    std::printf("GET /page.shtml -> %d   GET /index.html -> %d\n",
                ssi.status, ok.status);
  }

  std::uint64_t diversions = 0, retries = 0;
  for (const Site& s : server.fx().mgr().sites().all()) {
    diversions += s.stats.diversions;
    retries += s.stats.retries;
  }
  std::printf("\nserver survived: %llu retries, %llu diversions; "
              "accepted=%llu closed=%llu\n",
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(diversions),
              static_cast<unsigned long long>(
                  server.counters().connections_accepted.get()),
              static_cast<unsigned long long>(
                  server.counters().connections_closed.get()));
  return diversions >= 3 ? 0 : 1;
}
