// Quickstart: protect a tiny application with FIRestarter.
//
// Shows the core loop in ~60 lines: library calls through the FIR_* gates,
// tracked application state, a persistent crash, and the automatic
// rollback -> retry -> fault-injection recovery that turns the crash into
// an error the application already handles.
#include <cstdio>

#include "interpose/fir.h"
#include "mem/tracked.h"

int main() {
  // An Fx bundles the virtual OS and the recovery runtime. StmOnly keeps
  // the demo deterministic; the default adaptive policy mixes HTM and STM.
  fir::TxManagerConfig config;
  config.policy.kind = fir::PolicyKind::kStmOnly;
  fir::Fx fx(config);

  // Mark this frame as the protected region's anchor (in a server this is
  // the event-loop frame).
  FIR_ANCHOR(fx);

  // Application state that must survive rollbacks lives in tracked memory.
  fir::tracked<int> sockets_opened;
  sockets_opened.init(0);

  std::puts("1) a library call opens a crash transaction:");
  const int fd = FIR_SOCKET(fx);
  if (fd >= 0) {
    sockets_opened += 1;
    std::printf("   socket() = %d, state updated to %d\n", fd,
                sockets_opened.get());

    std::puts("2) the code after it hits a persistent bug (NULL deref):");
    // This crash re-fires on every re-execution — a deterministic bug.
    fir::raise_crash(fir::CrashKind::kSegv);
  }

  // Execution resumes HERE: FIRestarter rolled the state back, retried
  // once (transient-fault hypothesis), saw the crash again, ran socket()'s
  // compensation action (closing the fd) and injected the documented
  // error: socket() "returned" -1 with errno = EMFILE.
  std::puts("3) recovery diverted execution into the error handler:");
  std::printf("   socket() = %d, errno = %d (EMFILE), state rolled back "
              "to %d\n",
              fd, fx.err(), sockets_opened.get());
  std::printf("   open fds in the process: %zu (compensation closed it)\n",
              fx.env().open_fd_count());

  FIR_QUIESCE(fx);
  const auto& log = fx.mgr().recovery_log();
  std::printf("4) recovery log: %zu episodes (retry then divert), "
              "last latency %.1f us\n",
              log.size(), log.back().latency_seconds * 1e6);
  return fd == -1 && sockets_opened.get() == 0 ? 0 : 1;
}
