// Adaptive-policy demo: watch the per-site tx_gate[] state evolve — sites
// whose transactions overflow the HTM write-set get demoted to STM while
// the rest keep using cheap hardware transactions (SIV-C).
#include <cstdio>

#include "apps/miniginx.h"
#include "obs/cli.h"
#include "report/report.h"
#include "workload/drivers.h"

using namespace fir;

int main(int argc, char** argv) {
  obs::apply_cli_flags(&argc, argv);  // --trace-out=... etc.
  TxManagerConfig config;  // adaptive, threshold 1%, sample 4
  config.htm.interrupt_abort_per_store = 1e-4;
  Miniginx server(config);
  if (!server.start(0).is_ok()) return 1;

  Rng rng(7);
  run_http_load(server, 3000, 8, rng);

  TxManager& mgr = server.fx().mgr();
  std::printf("%s", report::site_table(mgr.sites()).c_str());

  int sticky = 0;
  for (const Site& site : mgr.sites().all())
    sticky += site.gate.sticky_stm ? 1 : 0;
  const HtmStats& htm = mgr.htm_stats();
  std::printf("\n%d site(s) permanently demoted to STM; "
              "HTM: %llu begun, %llu aborted\n",
              sticky, static_cast<unsigned long long>(htm.begun),
              static_cast<unsigned long long>(htm.aborted_total()));

  std::printf("\n-- metrics registry (docs/OBSERVABILITY.md) --\n%s",
              report::metrics_table(mgr.metrics()).c_str());
  if (mgr.obs().tracing()) {
    std::printf("\n-- trace tail (site demotions and friends) --\n%s",
                report::trace_table(mgr.obs().trace(), mgr.sites(), 16)
                    .c_str());
  }
  return sticky >= 1 ? 0 : 1;
}
