// Adaptive-policy demo: watch the per-site tx_gate[] state evolve — sites
// whose transactions overflow the HTM write-set get demoted to STM while
// the rest keep using cheap hardware transactions (SIV-C).
#include <cstdio>

#include "apps/miniginx.h"
#include "report/report.h"
#include "workload/drivers.h"

using namespace fir;

int main() {
  TxManagerConfig config;  // adaptive, threshold 1%, sample 4
  config.htm.interrupt_abort_per_store = 1e-4;
  Miniginx server(config);
  if (!server.start(0).is_ok()) return 1;

  Rng rng(7);
  run_http_load(server, 3000, 8, rng);

  std::printf("%s", report::site_table(server.fx().mgr().sites()).c_str());

  int sticky = 0;
  for (const Site& site : server.fx().mgr().sites().all())
    sticky += site.gate.sticky_stm ? 1 : 0;
  const HtmStats& htm = server.fx().mgr().htm_stats();
  std::printf("\n%d site(s) permanently demoted to STM; "
              "HTM: %llu begun, %llu aborted\n",
              sticky, static_cast<unsigned long long>(htm.begun),
              static_cast<unsigned long long>(htm.aborted_total()));
  return sticky >= 1 ? 0 : 1;
}
