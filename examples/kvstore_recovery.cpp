// Key-value store recovery demo: a crash in the middle of SET must not
// corrupt the keyspace — the tracked hash map rolls back to the last
// consistent state and the store keeps serving.
#include <cstdio>

#include "apps/minikv.h"
#include "obs/cli.h"
#include "report/report.h"
#include "workload/kv_client.h"

using namespace fir;

namespace {
std::string cmd(Minikv& server, KvClient& client, const std::string& line) {
  if (!client.connected()) client.connect();
  client.send_command(line);
  std::string reply;
  for (int i = 0; i < 16; ++i) {
    server.run_once();
    if (client.try_read_reply(reply) == 1) break;
  }
  return reply;
}
}  // namespace

int main(int argc, char** argv) {
  // FIR_TRACE_OUT=trace.jsonl (or --trace-out=trace.jsonl) dumps the
  // recovery-event trace of this run; see docs/OBSERVABILITY.md for a
  // walkthrough of the events this demo produces.
  obs::apply_cli_flags(&argc, argv);
  Minikv server;
  if (!server.start(0).is_ok()) return 1;
  KvClient client(server.fx().env(), server.port());

  std::puts("-- populate --");
  for (int i = 0; i < 5; ++i) {
    char line[64];
    std::snprintf(line, sizeof(line), "SET user:%d name-%d", i, i);
    std::printf("%s -> %s\n", line, cmd(server, client, line).c_str());
  }
  std::printf("DBSIZE -> %s\n", cmd(server, client, "DBSIZE").c_str());

  // Arm a persistent fault in the SET handler.
  MarkerId target = kInvalidMarker;
  for (const Marker& m : server.fx().hsfi().markers())
    if (m.name == "cmd_set") target = m.id;
  if (target == kInvalidMarker) return 1;
  server.fx().hsfi().arm(
      FaultPlan{target, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
  std::puts("\n-- persistent fault armed inside SET --");
  client.send_command("SET victim boom");
  for (int i = 0; i < 8; ++i) server.run_once();
  std::puts("SET victim boom -> (connection dropped by recovery)");
  server.fx().hsfi().disarm();

  std::puts("\n-- keyspace is intact, service continues --");
  KvClient fresh(server.fx().env(), server.port());
  std::printf("DBSIZE -> %s\n", cmd(server, fresh, "DBSIZE").c_str());
  std::printf("GET user:3 -> %s\n", cmd(server, fresh, "GET user:3").c_str());
  std::printf("GET victim -> %s\n", cmd(server, fresh, "GET victim").c_str());
  std::printf("SET after recovery -> %s\n",
              cmd(server, fresh, "SET post ok").c_str());

  TxManager& mgr = server.fx().mgr();
  if (mgr.obs().tracing()) {
    std::puts("\n-- recovery-event trace tail --");
    std::printf("%s", report::trace_table(mgr.obs().trace(), mgr.sites(), 12)
                          .c_str());
  }
  return server.db_size() == 6 ? 0 : 1;  // 5 users + post
}
