# Empty dependencies file for micro_checkpoint.
# This may be replaced when dependencies are built.
