file(REMOVE_RECURSE
  "CMakeFiles/micro_checkpoint.dir/micro_checkpoint.cpp.o"
  "CMakeFiles/micro_checkpoint.dir/micro_checkpoint.cpp.o.d"
  "micro_checkpoint"
  "micro_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
