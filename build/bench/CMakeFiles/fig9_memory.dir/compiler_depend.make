# Empty compiler generated dependencies file for fig9_memory.
# This may be replaced when dependencies are built.
