file(REMOVE_RECURSE
  "CMakeFiles/fig9_memory.dir/fig9_memory.cpp.o"
  "CMakeFiles/fig9_memory.dir/fig9_memory.cpp.o.d"
  "fig9_memory"
  "fig9_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
