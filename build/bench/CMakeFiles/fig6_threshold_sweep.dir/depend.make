# Empty dependencies file for fig6_threshold_sweep.
# This may be replaced when dependencies are built.
