# Empty dependencies file for table3_surface.
# This may be replaced when dependencies are built.
