file(REMOVE_RECURSE
  "CMakeFiles/table3_surface.dir/table3_surface.cpp.o"
  "CMakeFiles/table3_surface.dir/table3_surface.cpp.o.d"
  "table3_surface"
  "table3_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
