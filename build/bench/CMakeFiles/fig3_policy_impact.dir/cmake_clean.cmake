file(REMOVE_RECURSE
  "CMakeFiles/fig3_policy_impact.dir/fig3_policy_impact.cpp.o"
  "CMakeFiles/fig3_policy_impact.dir/fig3_policy_impact.cpp.o.d"
  "fig3_policy_impact"
  "fig3_policy_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_policy_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
