# Empty compiler generated dependencies file for fig3_policy_impact.
# This may be replaced when dependencies are built.
