file(REMOVE_RECURSE
  "CMakeFiles/table2_recoverability.dir/table2_recoverability.cpp.o"
  "CMakeFiles/table2_recoverability.dir/table2_recoverability.cpp.o.d"
  "table2_recoverability"
  "table2_recoverability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_recoverability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
