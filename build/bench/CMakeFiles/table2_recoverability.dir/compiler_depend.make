# Empty compiler generated dependencies file for table2_recoverability.
# This may be replaced when dependencies are built.
