file(REMOVE_RECURSE
  "CMakeFiles/fig8_htm_failures.dir/fig8_htm_failures.cpp.o"
  "CMakeFiles/fig8_htm_failures.dir/fig8_htm_failures.cpp.o.d"
  "fig8_htm_failures"
  "fig8_htm_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_htm_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
