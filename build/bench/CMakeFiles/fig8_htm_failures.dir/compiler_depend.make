# Empty compiler generated dependencies file for fig8_htm_failures.
# This may be replaced when dependencies are built.
