file(REMOVE_RECURSE
  "CMakeFiles/fig5_latency.dir/fig5_latency.cpp.o"
  "CMakeFiles/fig5_latency.dir/fig5_latency.cpp.o.d"
  "fig5_latency"
  "fig5_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
