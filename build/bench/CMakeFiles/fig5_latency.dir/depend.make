# Empty dependencies file for fig5_latency.
# This may be replaced when dependencies are built.
