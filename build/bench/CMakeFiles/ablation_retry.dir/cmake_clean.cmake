file(REMOVE_RECURSE
  "CMakeFiles/ablation_retry.dir/ablation_retry.cpp.o"
  "CMakeFiles/ablation_retry.dir/ablation_retry.cpp.o.d"
  "ablation_retry"
  "ablation_retry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
