# Empty compiler generated dependencies file for ablation_retry.
# This may be replaced when dependencies are built.
