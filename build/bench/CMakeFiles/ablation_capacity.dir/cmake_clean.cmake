file(REMOVE_RECURSE
  "CMakeFiles/ablation_capacity.dir/ablation_capacity.cpp.o"
  "CMakeFiles/ablation_capacity.dir/ablation_capacity.cpp.o.d"
  "ablation_capacity"
  "ablation_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
