file(REMOVE_RECURSE
  "CMakeFiles/table4_survivability.dir/table4_survivability.cpp.o"
  "CMakeFiles/table4_survivability.dir/table4_survivability.cpp.o.d"
  "table4_survivability"
  "table4_survivability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_survivability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
