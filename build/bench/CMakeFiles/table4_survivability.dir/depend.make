# Empty dependencies file for table4_survivability.
# This may be replaced when dependencies are built.
