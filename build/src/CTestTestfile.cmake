# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("mem")
subdirs("htm")
subdirs("stm")
subdirs("libmodel")
subdirs("env")
subdirs("core")
subdirs("interpose")
subdirs("hsfi")
subdirs("apps")
subdirs("workload")
subdirs("report")
