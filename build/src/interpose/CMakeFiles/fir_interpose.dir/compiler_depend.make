# Empty compiler generated dependencies file for fir_interpose.
# This may be replaced when dependencies are built.
