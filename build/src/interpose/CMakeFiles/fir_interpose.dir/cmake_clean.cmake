file(REMOVE_RECURSE
  "CMakeFiles/fir_interpose.dir/comp.cpp.o"
  "CMakeFiles/fir_interpose.dir/comp.cpp.o.d"
  "CMakeFiles/fir_interpose.dir/fir.cpp.o"
  "CMakeFiles/fir_interpose.dir/fir.cpp.o.d"
  "libfir_interpose.a"
  "libfir_interpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_interpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
