
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interpose/comp.cpp" "src/interpose/CMakeFiles/fir_interpose.dir/comp.cpp.o" "gcc" "src/interpose/CMakeFiles/fir_interpose.dir/comp.cpp.o.d"
  "/root/repo/src/interpose/fir.cpp" "src/interpose/CMakeFiles/fir_interpose.dir/fir.cpp.o" "gcc" "src/interpose/CMakeFiles/fir_interpose.dir/fir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/fir_env.dir/DependInfo.cmake"
  "/root/repo/build/src/hsfi/CMakeFiles/fir_hsfi.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/fir_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/fir_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fir_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/libmodel/CMakeFiles/fir_libmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
