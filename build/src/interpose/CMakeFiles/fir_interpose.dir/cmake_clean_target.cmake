file(REMOVE_RECURSE
  "libfir_interpose.a"
)
