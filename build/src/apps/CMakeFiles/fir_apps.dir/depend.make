# Empty dependencies file for fir_apps.
# This may be replaced when dependencies are built.
