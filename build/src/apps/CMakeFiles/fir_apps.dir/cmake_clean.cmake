file(REMOVE_RECURSE
  "CMakeFiles/fir_apps.dir/apachette.cpp.o"
  "CMakeFiles/fir_apps.dir/apachette.cpp.o.d"
  "CMakeFiles/fir_apps.dir/http.cpp.o"
  "CMakeFiles/fir_apps.dir/http.cpp.o.d"
  "CMakeFiles/fir_apps.dir/littlehttpd.cpp.o"
  "CMakeFiles/fir_apps.dir/littlehttpd.cpp.o.d"
  "CMakeFiles/fir_apps.dir/miniginx.cpp.o"
  "CMakeFiles/fir_apps.dir/miniginx.cpp.o.d"
  "CMakeFiles/fir_apps.dir/minikv.cpp.o"
  "CMakeFiles/fir_apps.dir/minikv.cpp.o.d"
  "CMakeFiles/fir_apps.dir/minipg.cpp.o"
  "CMakeFiles/fir_apps.dir/minipg.cpp.o.d"
  "libfir_apps.a"
  "libfir_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
