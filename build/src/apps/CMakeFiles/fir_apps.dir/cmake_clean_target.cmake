file(REMOVE_RECURSE
  "libfir_apps.a"
)
