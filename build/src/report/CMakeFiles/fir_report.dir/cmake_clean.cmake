file(REMOVE_RECURSE
  "CMakeFiles/fir_report.dir/report.cpp.o"
  "CMakeFiles/fir_report.dir/report.cpp.o.d"
  "libfir_report.a"
  "libfir_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
