file(REMOVE_RECURSE
  "libfir_report.a"
)
