# Empty dependencies file for fir_report.
# This may be replaced when dependencies are built.
