# Empty compiler generated dependencies file for fir_hsfi.
# This may be replaced when dependencies are built.
