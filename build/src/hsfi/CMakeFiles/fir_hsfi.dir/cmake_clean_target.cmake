file(REMOVE_RECURSE
  "libfir_hsfi.a"
)
