file(REMOVE_RECURSE
  "CMakeFiles/fir_hsfi.dir/hsfi.cpp.o"
  "CMakeFiles/fir_hsfi.dir/hsfi.cpp.o.d"
  "libfir_hsfi.a"
  "libfir_hsfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_hsfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
