file(REMOVE_RECURSE
  "libfir_libmodel.a"
)
