file(REMOVE_RECURSE
  "CMakeFiles/fir_libmodel.dir/catalog.cpp.o"
  "CMakeFiles/fir_libmodel.dir/catalog.cpp.o.d"
  "libfir_libmodel.a"
  "libfir_libmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_libmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
