# Empty dependencies file for fir_libmodel.
# This may be replaced when dependencies are built.
