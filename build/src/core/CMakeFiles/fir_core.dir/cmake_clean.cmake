file(REMOVE_RECURSE
  "CMakeFiles/fir_core.dir/analyzer.cpp.o"
  "CMakeFiles/fir_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/fir_core.dir/crash.cpp.o"
  "CMakeFiles/fir_core.dir/crash.cpp.o.d"
  "CMakeFiles/fir_core.dir/policy.cpp.o"
  "CMakeFiles/fir_core.dir/policy.cpp.o.d"
  "CMakeFiles/fir_core.dir/site.cpp.o"
  "CMakeFiles/fir_core.dir/site.cpp.o.d"
  "CMakeFiles/fir_core.dir/stack_snapshot.cpp.o"
  "CMakeFiles/fir_core.dir/stack_snapshot.cpp.o.d"
  "CMakeFiles/fir_core.dir/tx_manager.cpp.o"
  "CMakeFiles/fir_core.dir/tx_manager.cpp.o.d"
  "libfir_core.a"
  "libfir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
