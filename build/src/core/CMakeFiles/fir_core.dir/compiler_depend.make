# Empty compiler generated dependencies file for fir_core.
# This may be replaced when dependencies are built.
