file(REMOVE_RECURSE
  "libfir_core.a"
)
