
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cpp" "src/core/CMakeFiles/fir_core.dir/analyzer.cpp.o" "gcc" "src/core/CMakeFiles/fir_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/core/crash.cpp" "src/core/CMakeFiles/fir_core.dir/crash.cpp.o" "gcc" "src/core/CMakeFiles/fir_core.dir/crash.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/fir_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/fir_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/site.cpp" "src/core/CMakeFiles/fir_core.dir/site.cpp.o" "gcc" "src/core/CMakeFiles/fir_core.dir/site.cpp.o.d"
  "/root/repo/src/core/stack_snapshot.cpp" "src/core/CMakeFiles/fir_core.dir/stack_snapshot.cpp.o" "gcc" "src/core/CMakeFiles/fir_core.dir/stack_snapshot.cpp.o.d"
  "/root/repo/src/core/tx_manager.cpp" "src/core/CMakeFiles/fir_core.dir/tx_manager.cpp.o" "gcc" "src/core/CMakeFiles/fir_core.dir/tx_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fir_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/fir_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/fir_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/libmodel/CMakeFiles/fir_libmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/fir_env.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
