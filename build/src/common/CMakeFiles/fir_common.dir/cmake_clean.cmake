file(REMOVE_RECURSE
  "CMakeFiles/fir_common.dir/histogram.cpp.o"
  "CMakeFiles/fir_common.dir/histogram.cpp.o.d"
  "CMakeFiles/fir_common.dir/log.cpp.o"
  "CMakeFiles/fir_common.dir/log.cpp.o.d"
  "CMakeFiles/fir_common.dir/rng.cpp.o"
  "CMakeFiles/fir_common.dir/rng.cpp.o.d"
  "CMakeFiles/fir_common.dir/status.cpp.o"
  "CMakeFiles/fir_common.dir/status.cpp.o.d"
  "CMakeFiles/fir_common.dir/table.cpp.o"
  "CMakeFiles/fir_common.dir/table.cpp.o.d"
  "libfir_common.a"
  "libfir_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
