# Empty dependencies file for fir_common.
# This may be replaced when dependencies are built.
