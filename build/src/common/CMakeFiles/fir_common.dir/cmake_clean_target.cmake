file(REMOVE_RECURSE
  "libfir_common.a"
)
