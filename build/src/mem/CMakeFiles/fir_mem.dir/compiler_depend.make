# Empty compiler generated dependencies file for fir_mem.
# This may be replaced when dependencies are built.
