
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/store_gate.cpp" "src/mem/CMakeFiles/fir_mem.dir/store_gate.cpp.o" "gcc" "src/mem/CMakeFiles/fir_mem.dir/store_gate.cpp.o.d"
  "/root/repo/src/mem/undo_log.cpp" "src/mem/CMakeFiles/fir_mem.dir/undo_log.cpp.o" "gcc" "src/mem/CMakeFiles/fir_mem.dir/undo_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
