file(REMOVE_RECURSE
  "libfir_mem.a"
)
