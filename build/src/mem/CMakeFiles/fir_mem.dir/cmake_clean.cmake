file(REMOVE_RECURSE
  "CMakeFiles/fir_mem.dir/store_gate.cpp.o"
  "CMakeFiles/fir_mem.dir/store_gate.cpp.o.d"
  "CMakeFiles/fir_mem.dir/undo_log.cpp.o"
  "CMakeFiles/fir_mem.dir/undo_log.cpp.o.d"
  "libfir_mem.a"
  "libfir_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
