# CMake generated Testfile for 
# Source directory: /root/repo/src/env
# Build directory: /root/repo/build/src/env
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
