file(REMOVE_RECURSE
  "libfir_env.a"
)
