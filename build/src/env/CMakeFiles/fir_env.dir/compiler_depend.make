# Empty compiler generated dependencies file for fir_env.
# This may be replaced when dependencies are built.
