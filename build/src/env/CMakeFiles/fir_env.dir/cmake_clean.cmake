file(REMOVE_RECURSE
  "CMakeFiles/fir_env.dir/env.cpp.o"
  "CMakeFiles/fir_env.dir/env.cpp.o.d"
  "CMakeFiles/fir_env.dir/vfs.cpp.o"
  "CMakeFiles/fir_env.dir/vfs.cpp.o.d"
  "libfir_env.a"
  "libfir_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
