file(REMOVE_RECURSE
  "CMakeFiles/fir_htm.dir/htm.cpp.o"
  "CMakeFiles/fir_htm.dir/htm.cpp.o.d"
  "libfir_htm.a"
  "libfir_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
