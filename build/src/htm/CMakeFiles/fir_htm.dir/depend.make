# Empty dependencies file for fir_htm.
# This may be replaced when dependencies are built.
