file(REMOVE_RECURSE
  "libfir_htm.a"
)
