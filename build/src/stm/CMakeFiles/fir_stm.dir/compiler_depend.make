# Empty compiler generated dependencies file for fir_stm.
# This may be replaced when dependencies are built.
