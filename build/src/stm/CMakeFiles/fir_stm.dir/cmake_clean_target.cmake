file(REMOVE_RECURSE
  "libfir_stm.a"
)
