file(REMOVE_RECURSE
  "CMakeFiles/fir_stm.dir/stm.cpp.o"
  "CMakeFiles/fir_stm.dir/stm.cpp.o.d"
  "libfir_stm.a"
  "libfir_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
