# Empty dependencies file for fir_workload.
# This may be replaced when dependencies are built.
