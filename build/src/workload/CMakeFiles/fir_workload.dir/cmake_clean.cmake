file(REMOVE_RECURSE
  "CMakeFiles/fir_workload.dir/campaign.cpp.o"
  "CMakeFiles/fir_workload.dir/campaign.cpp.o.d"
  "CMakeFiles/fir_workload.dir/drivers.cpp.o"
  "CMakeFiles/fir_workload.dir/drivers.cpp.o.d"
  "CMakeFiles/fir_workload.dir/http_client.cpp.o"
  "CMakeFiles/fir_workload.dir/http_client.cpp.o.d"
  "CMakeFiles/fir_workload.dir/kv_client.cpp.o"
  "CMakeFiles/fir_workload.dir/kv_client.cpp.o.d"
  "CMakeFiles/fir_workload.dir/pg_client.cpp.o"
  "CMakeFiles/fir_workload.dir/pg_client.cpp.o.d"
  "libfir_workload.a"
  "libfir_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
