file(REMOVE_RECURSE
  "libfir_workload.a"
)
