# Empty compiler generated dependencies file for fir_apps_test.
# This may be replaced when dependencies are built.
