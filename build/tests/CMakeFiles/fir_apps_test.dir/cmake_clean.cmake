file(REMOVE_RECURSE
  "CMakeFiles/fir_apps_test.dir/apps/apachette_test.cpp.o"
  "CMakeFiles/fir_apps_test.dir/apps/apachette_test.cpp.o.d"
  "CMakeFiles/fir_apps_test.dir/apps/http_test.cpp.o"
  "CMakeFiles/fir_apps_test.dir/apps/http_test.cpp.o.d"
  "CMakeFiles/fir_apps_test.dir/apps/littlehttpd_test.cpp.o"
  "CMakeFiles/fir_apps_test.dir/apps/littlehttpd_test.cpp.o.d"
  "CMakeFiles/fir_apps_test.dir/apps/miniginx_test.cpp.o"
  "CMakeFiles/fir_apps_test.dir/apps/miniginx_test.cpp.o.d"
  "CMakeFiles/fir_apps_test.dir/apps/minikv_test.cpp.o"
  "CMakeFiles/fir_apps_test.dir/apps/minikv_test.cpp.o.d"
  "CMakeFiles/fir_apps_test.dir/apps/minipg_test.cpp.o"
  "CMakeFiles/fir_apps_test.dir/apps/minipg_test.cpp.o.d"
  "fir_apps_test"
  "fir_apps_test.pdb"
  "fir_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
