# Empty dependencies file for fir_env_test.
# This may be replaced when dependencies are built.
