file(REMOVE_RECURSE
  "CMakeFiles/fir_env_test.dir/env/env_epoll_test.cpp.o"
  "CMakeFiles/fir_env_test.dir/env/env_epoll_test.cpp.o.d"
  "CMakeFiles/fir_env_test.dir/env/env_file_test.cpp.o"
  "CMakeFiles/fir_env_test.dir/env/env_file_test.cpp.o.d"
  "CMakeFiles/fir_env_test.dir/env/env_socket_test.cpp.o"
  "CMakeFiles/fir_env_test.dir/env/env_socket_test.cpp.o.d"
  "CMakeFiles/fir_env_test.dir/env/env_vector_test.cpp.o"
  "CMakeFiles/fir_env_test.dir/env/env_vector_test.cpp.o.d"
  "CMakeFiles/fir_env_test.dir/env/vfs_test.cpp.o"
  "CMakeFiles/fir_env_test.dir/env/vfs_test.cpp.o.d"
  "fir_env_test"
  "fir_env_test.pdb"
  "fir_env_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
