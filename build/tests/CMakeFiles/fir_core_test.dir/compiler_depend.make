# Empty compiler generated dependencies file for fir_core_test.
# This may be replaced when dependencies are built.
