file(REMOVE_RECURSE
  "CMakeFiles/fir_core_test.dir/core/analyzer_test.cpp.o"
  "CMakeFiles/fir_core_test.dir/core/analyzer_test.cpp.o.d"
  "CMakeFiles/fir_core_test.dir/core/crash_test.cpp.o"
  "CMakeFiles/fir_core_test.dir/core/crash_test.cpp.o.d"
  "CMakeFiles/fir_core_test.dir/core/policy_test.cpp.o"
  "CMakeFiles/fir_core_test.dir/core/policy_test.cpp.o.d"
  "CMakeFiles/fir_core_test.dir/core/recovery_test.cpp.o"
  "CMakeFiles/fir_core_test.dir/core/recovery_test.cpp.o.d"
  "CMakeFiles/fir_core_test.dir/core/stack_snapshot_test.cpp.o"
  "CMakeFiles/fir_core_test.dir/core/stack_snapshot_test.cpp.o.d"
  "CMakeFiles/fir_core_test.dir/core/tx_manager_test.cpp.o"
  "CMakeFiles/fir_core_test.dir/core/tx_manager_test.cpp.o.d"
  "fir_core_test"
  "fir_core_test.pdb"
  "fir_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
