file(REMOVE_RECURSE
  "CMakeFiles/fir_workload_test.dir/workload/campaign_test.cpp.o"
  "CMakeFiles/fir_workload_test.dir/workload/campaign_test.cpp.o.d"
  "CMakeFiles/fir_workload_test.dir/workload/clients_test.cpp.o"
  "CMakeFiles/fir_workload_test.dir/workload/clients_test.cpp.o.d"
  "CMakeFiles/fir_workload_test.dir/workload/drivers_test.cpp.o"
  "CMakeFiles/fir_workload_test.dir/workload/drivers_test.cpp.o.d"
  "fir_workload_test"
  "fir_workload_test.pdb"
  "fir_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
