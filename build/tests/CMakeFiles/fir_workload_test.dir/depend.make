# Empty dependencies file for fir_workload_test.
# This may be replaced when dependencies are built.
