# Empty compiler generated dependencies file for fir_hsfi_test.
# This may be replaced when dependencies are built.
