file(REMOVE_RECURSE
  "CMakeFiles/fir_hsfi_test.dir/hsfi/hsfi_test.cpp.o"
  "CMakeFiles/fir_hsfi_test.dir/hsfi/hsfi_test.cpp.o.d"
  "fir_hsfi_test"
  "fir_hsfi_test.pdb"
  "fir_hsfi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_hsfi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
