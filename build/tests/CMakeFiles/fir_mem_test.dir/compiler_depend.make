# Empty compiler generated dependencies file for fir_mem_test.
# This may be replaced when dependencies are built.
