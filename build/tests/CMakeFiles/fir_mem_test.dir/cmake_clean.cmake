file(REMOVE_RECURSE
  "CMakeFiles/fir_mem_test.dir/mem/tracked_buffer_test.cpp.o"
  "CMakeFiles/fir_mem_test.dir/mem/tracked_buffer_test.cpp.o.d"
  "CMakeFiles/fir_mem_test.dir/mem/tracked_map_test.cpp.o"
  "CMakeFiles/fir_mem_test.dir/mem/tracked_map_test.cpp.o.d"
  "CMakeFiles/fir_mem_test.dir/mem/tracked_pool_test.cpp.o"
  "CMakeFiles/fir_mem_test.dir/mem/tracked_pool_test.cpp.o.d"
  "CMakeFiles/fir_mem_test.dir/mem/tracked_test.cpp.o"
  "CMakeFiles/fir_mem_test.dir/mem/tracked_test.cpp.o.d"
  "CMakeFiles/fir_mem_test.dir/mem/undo_log_test.cpp.o"
  "CMakeFiles/fir_mem_test.dir/mem/undo_log_test.cpp.o.d"
  "fir_mem_test"
  "fir_mem_test.pdb"
  "fir_mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
