file(REMOVE_RECURSE
  "CMakeFiles/fir_common_test.dir/common/histogram_test.cpp.o"
  "CMakeFiles/fir_common_test.dir/common/histogram_test.cpp.o.d"
  "CMakeFiles/fir_common_test.dir/common/rng_test.cpp.o"
  "CMakeFiles/fir_common_test.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/fir_common_test.dir/common/status_test.cpp.o"
  "CMakeFiles/fir_common_test.dir/common/status_test.cpp.o.d"
  "CMakeFiles/fir_common_test.dir/common/table_test.cpp.o"
  "CMakeFiles/fir_common_test.dir/common/table_test.cpp.o.d"
  "fir_common_test"
  "fir_common_test.pdb"
  "fir_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
