# Empty compiler generated dependencies file for fir_common_test.
# This may be replaced when dependencies are built.
