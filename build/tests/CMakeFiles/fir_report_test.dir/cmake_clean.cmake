file(REMOVE_RECURSE
  "CMakeFiles/fir_report_test.dir/report/report_test.cpp.o"
  "CMakeFiles/fir_report_test.dir/report/report_test.cpp.o.d"
  "fir_report_test"
  "fir_report_test.pdb"
  "fir_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
