# Empty compiler generated dependencies file for fir_report_test.
# This may be replaced when dependencies are built.
