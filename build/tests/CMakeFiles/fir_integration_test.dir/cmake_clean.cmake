file(REMOVE_RECURSE
  "CMakeFiles/fir_integration_test.dir/integration/chaos_test.cpp.o"
  "CMakeFiles/fir_integration_test.dir/integration/chaos_test.cpp.o.d"
  "CMakeFiles/fir_integration_test.dir/integration/crash_recovery_test.cpp.o"
  "CMakeFiles/fir_integration_test.dir/integration/crash_recovery_test.cpp.o.d"
  "CMakeFiles/fir_integration_test.dir/integration/durability_test.cpp.o"
  "CMakeFiles/fir_integration_test.dir/integration/durability_test.cpp.o.d"
  "CMakeFiles/fir_integration_test.dir/integration/multi_instance_test.cpp.o"
  "CMakeFiles/fir_integration_test.dir/integration/multi_instance_test.cpp.o.d"
  "CMakeFiles/fir_integration_test.dir/integration/realworld_bugs_test.cpp.o"
  "CMakeFiles/fir_integration_test.dir/integration/realworld_bugs_test.cpp.o.d"
  "CMakeFiles/fir_integration_test.dir/integration/survivability_test.cpp.o"
  "CMakeFiles/fir_integration_test.dir/integration/survivability_test.cpp.o.d"
  "CMakeFiles/fir_integration_test.dir/integration/workload_test.cpp.o"
  "CMakeFiles/fir_integration_test.dir/integration/workload_test.cpp.o.d"
  "fir_integration_test"
  "fir_integration_test.pdb"
  "fir_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
