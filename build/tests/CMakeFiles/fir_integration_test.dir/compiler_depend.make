# Empty compiler generated dependencies file for fir_integration_test.
# This may be replaced when dependencies are built.
