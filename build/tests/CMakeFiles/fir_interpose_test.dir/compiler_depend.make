# Empty compiler generated dependencies file for fir_interpose_test.
# This may be replaced when dependencies are built.
