file(REMOVE_RECURSE
  "CMakeFiles/fir_interpose_test.dir/interpose/comp_test.cpp.o"
  "CMakeFiles/fir_interpose_test.dir/interpose/comp_test.cpp.o.d"
  "CMakeFiles/fir_interpose_test.dir/interpose/wrappers_test.cpp.o"
  "CMakeFiles/fir_interpose_test.dir/interpose/wrappers_test.cpp.o.d"
  "fir_interpose_test"
  "fir_interpose_test.pdb"
  "fir_interpose_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_interpose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
