# Empty dependencies file for fir_libmodel_test.
# This may be replaced when dependencies are built.
