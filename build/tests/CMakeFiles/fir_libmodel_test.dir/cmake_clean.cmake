file(REMOVE_RECURSE
  "CMakeFiles/fir_libmodel_test.dir/libmodel/catalog_test.cpp.o"
  "CMakeFiles/fir_libmodel_test.dir/libmodel/catalog_test.cpp.o.d"
  "fir_libmodel_test"
  "fir_libmodel_test.pdb"
  "fir_libmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_libmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
