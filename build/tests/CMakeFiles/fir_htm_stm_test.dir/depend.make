# Empty dependencies file for fir_htm_stm_test.
# This may be replaced when dependencies are built.
