file(REMOVE_RECURSE
  "CMakeFiles/fir_htm_stm_test.dir/htm/htm_test.cpp.o"
  "CMakeFiles/fir_htm_stm_test.dir/htm/htm_test.cpp.o.d"
  "CMakeFiles/fir_htm_stm_test.dir/stm/stm_test.cpp.o"
  "CMakeFiles/fir_htm_stm_test.dir/stm/stm_test.cpp.o.d"
  "fir_htm_stm_test"
  "fir_htm_stm_test.pdb"
  "fir_htm_stm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_htm_stm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
