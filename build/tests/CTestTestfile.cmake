# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fir_common_test[1]_include.cmake")
include("/root/repo/build/tests/fir_mem_test[1]_include.cmake")
include("/root/repo/build/tests/fir_htm_stm_test[1]_include.cmake")
include("/root/repo/build/tests/fir_libmodel_test[1]_include.cmake")
include("/root/repo/build/tests/fir_env_test[1]_include.cmake")
include("/root/repo/build/tests/fir_core_test[1]_include.cmake")
include("/root/repo/build/tests/fir_interpose_test[1]_include.cmake")
include("/root/repo/build/tests/fir_workload_test[1]_include.cmake")
include("/root/repo/build/tests/fir_report_test[1]_include.cmake")
include("/root/repo/build/tests/fir_hsfi_test[1]_include.cmake")
include("/root/repo/build/tests/fir_apps_test[1]_include.cmake")
include("/root/repo/build/tests/fir_integration_test[1]_include.cmake")
