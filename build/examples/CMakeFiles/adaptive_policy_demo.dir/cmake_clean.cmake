file(REMOVE_RECURSE
  "CMakeFiles/adaptive_policy_demo.dir/adaptive_policy_demo.cpp.o"
  "CMakeFiles/adaptive_policy_demo.dir/adaptive_policy_demo.cpp.o.d"
  "adaptive_policy_demo"
  "adaptive_policy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_policy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
