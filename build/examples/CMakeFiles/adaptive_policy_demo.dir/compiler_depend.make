# Empty compiler generated dependencies file for adaptive_policy_demo.
# This may be replaced when dependencies are built.
