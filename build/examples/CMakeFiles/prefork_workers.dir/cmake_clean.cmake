file(REMOVE_RECURSE
  "CMakeFiles/prefork_workers.dir/prefork_workers.cpp.o"
  "CMakeFiles/prefork_workers.dir/prefork_workers.cpp.o.d"
  "prefork_workers"
  "prefork_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefork_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
