
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/prefork_workers.cpp" "examples/CMakeFiles/prefork_workers.dir/prefork_workers.cpp.o" "gcc" "examples/CMakeFiles/prefork_workers.dir/prefork_workers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/fir_report.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fir_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fir_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/interpose/CMakeFiles/fir_interpose.dir/DependInfo.cmake"
  "/root/repo/build/src/hsfi/CMakeFiles/fir_hsfi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/fir_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/fir_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fir_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/libmodel/CMakeFiles/fir_libmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/fir_env.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
