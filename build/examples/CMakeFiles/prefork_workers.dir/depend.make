# Empty dependencies file for prefork_workers.
# This may be replaced when dependencies are built.
