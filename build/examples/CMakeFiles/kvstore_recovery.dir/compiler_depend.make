# Empty compiler generated dependencies file for kvstore_recovery.
# This may be replaced when dependencies are built.
