file(REMOVE_RECURSE
  "CMakeFiles/kvstore_recovery.dir/kvstore_recovery.cpp.o"
  "CMakeFiles/kvstore_recovery.dir/kvstore_recovery.cpp.o.d"
  "kvstore_recovery"
  "kvstore_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
