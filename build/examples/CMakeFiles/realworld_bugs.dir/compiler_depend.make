# Empty compiler generated dependencies file for realworld_bugs.
# This may be replaced when dependencies are built.
