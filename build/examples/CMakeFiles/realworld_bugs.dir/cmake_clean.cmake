file(REMOVE_RECURSE
  "CMakeFiles/realworld_bugs.dir/realworld_bugs.cpp.o"
  "CMakeFiles/realworld_bugs.dir/realworld_bugs.cpp.o.d"
  "realworld_bugs"
  "realworld_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realworld_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
