# Empty compiler generated dependencies file for webserver_recovery.
# This may be replaced when dependencies are built.
