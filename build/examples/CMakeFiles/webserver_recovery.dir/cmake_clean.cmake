file(REMOVE_RECURSE
  "CMakeFiles/webserver_recovery.dir/webserver_recovery.cpp.o"
  "CMakeFiles/webserver_recovery.dir/webserver_recovery.cpp.o.d"
  "webserver_recovery"
  "webserver_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
