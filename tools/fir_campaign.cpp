// fir_campaign: the config-driven parallel fault-injection campaign CLI
// (docs/CAMPAIGNS.md).
//
//   fir_campaign --config bench/campaigns/table4.json --workers 8 \
//       --out /tmp/table4
//
// reads the campaign spec, profiles injection sites, fans the expanded
// run plan across N forked worker processes, and writes plan.jsonl,
// results.jsonl, matrix.json and report.md under --out. Prints the
// regenerated Table IV plus the per-fault matrices and exits 0 iff the
// campaign's pass gate holds. --aggregate re-renders the matrices from a
// saved results.jsonl without re-running anything (the pipeline's
// aggregation stage is pure over the records).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/builtin_specs.h"
#include "campaign/orchestrator.h"
#include "common/log.h"
#include "obs/cli.h"

namespace {

constexpr const char kUsage[] =
    "usage: fir_campaign [--config PATH | --spec NAME] [options]\n"
    "\n"
    "spec source (exactly one):\n"
    "  --config PATH        campaign spec JSON file\n"
    "  --spec NAME          built-in spec: table4, smoke\n"
    "\n"
    "options:\n"
    "  --workers N          worker process count (overrides the spec)\n"
    "  --seed N             campaign seed (overrides the spec)\n"
    "  --out DIR            write plan.jsonl, runs/, results.jsonl,\n"
    "                       matrix.json, report.md under DIR\n"
    "  --dry-run            print the expanded plan (JSONL) and exit\n"
    "  --run-index N        execute ONE plan run in-process and print its\n"
    "                       record (debug/repro; no fork isolation)\n"
    "  --in-process         run everything in this process (no fork; a\n"
    "                       double fault then kills the campaign)\n"
    "  --aggregate PATH     re-render matrices from a results.jsonl\n"
    "  --quiet              suppress per-run progress on stderr\n";

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return true;
}

int fail_usage(const char* message) {
  std::fprintf(stderr, "fir_campaign: %s\n\n%s", message, kUsage);
  return 2;
}

void print_outcome(const fir::campaign::Aggregate& agg, bool passed,
                   const std::string& failure) {
  std::printf("Table IV (fail-stop survivability)\n%s\n",
              fir::campaign::render_table4(agg).c_str());
  std::printf("%s\n", fir::campaign::render_matrices(agg).c_str());
  if (passed) {
    std::printf("Campaign gate: PASS\n");
  } else {
    std::printf("Campaign gate: FAIL (%s)\n", failure.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  fir::Logger::instance().set_level(fir::LogLevel::kOff);

  std::string config_path;
  std::string builtin_name;
  std::string aggregate_path;
  fir::campaign::OrchestratorOptions options;
  bool dry_run = false;
  bool quiet = false;
  long run_index = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fir_campaign: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_path = value("--config");
    } else if (arg == "--spec") {
      builtin_name = value("--spec");
    } else if (arg == "--workers") {
      options.workers = std::atoi(value("--workers"));
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (arg == "--out") {
      options.out_dir = value("--out");
    } else if (arg == "--aggregate") {
      aggregate_path = value("--aggregate");
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--run-index") {
      run_index = std::atol(value("--run-index"));
    } else if (arg == "--in-process") {
      options.in_process = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s\n%s", kUsage, fir::obs::cli_flags_help());
      return 0;
    } else {
      return fail_usage(("unknown argument " + arg).c_str());
    }
  }

  if (!aggregate_path.empty()) {
    std::string text;
    if (!read_file(aggregate_path, &text)) {
      std::fprintf(stderr, "fir_campaign: cannot read %s\n",
                   aggregate_path.c_str());
      return 1;
    }
    std::vector<fir::campaign::RunRecord> records;
    std::string error;
    if (!fir::campaign::load_results_jsonl(text, &records, &error)) {
      std::fprintf(stderr, "fir_campaign: %s\n", error.c_str());
      return 1;
    }
    const fir::campaign::Aggregate agg =
        fir::campaign::aggregate_records(records);
    std::string why;
    const bool passed = fir::campaign::campaign_passed(agg, 0.0, &why);
    print_outcome(agg, passed, why);
    return passed ? 0 : 1;
  }

  if (config_path.empty() == builtin_name.empty()) {
    return fail_usage("pass exactly one of --config or --spec");
  }
  std::string text;
  if (!config_path.empty()) {
    if (!read_file(config_path, &text)) {
      std::fprintf(stderr, "fir_campaign: cannot read %s\n",
                   config_path.c_str());
      return 1;
    }
  } else {
    const char* builtin = fir::campaign::builtin_spec(builtin_name);
    if (builtin == nullptr) {
      return fail_usage(("unknown built-in spec " + builtin_name).c_str());
    }
    text = builtin;
  }

  fir::campaign::CampaignSpec spec;
  std::string error;
  if (!fir::campaign::parse_campaign_spec(text, &spec, &error)) {
    std::fprintf(stderr, "fir_campaign: invalid spec: %s\n", error.c_str());
    return 1;
  }

  if (dry_run || run_index >= 0) {
    fir::campaign::CampaignSpec effective = spec;
    if (options.seed != 0) effective.seed = options.seed;
    const std::vector<fir::campaign::RunSpec> plan =
        fir::campaign::expand_plan(effective, fir::campaign::profile_target);
    if (dry_run) {
      for (const fir::campaign::RunSpec& run : plan) {
        std::printf("%s\n", fir::campaign::run_spec_jsonl(run).c_str());
      }
      return 0;
    }
    if (run_index >= static_cast<long>(plan.size())) {
      std::fprintf(stderr, "fir_campaign: --run-index %ld out of range "
                           "(plan has %zu runs)\n",
                   run_index, plan.size());
      return 1;
    }
    const fir::campaign::RunRecord record =
        fir::campaign::execute_run(plan[static_cast<std::size_t>(run_index)]);
    std::printf("%s\n", fir::campaign::record_jsonl(record).c_str());
    return 0;
  }

  const fir::campaign::CampaignOutcome outcome =
      fir::campaign::run_campaign_spec(spec, options, !quiet);
  print_outcome(outcome.aggregate, outcome.passed, outcome.failure);
  if (!options.out_dir.empty()) {
    std::printf("Results written under %s (plan.jsonl, runs/, "
                "results.jsonl, matrix.json, report.md)\n",
                options.out_dir.c_str());
  }
  return outcome.passed ? 0 : 1;
}
