// fir_fleet: run a prefork miniginx fleet under load and chaos.
//
//   fir_fleet [--fleet-workers=N] [--restart-backoff-ms=N]
//             [--flap-threshold=K] [--heartbeat-deadline-ms=N]
//             [--duration-ms=N] [--kill-every-ms=N]
//             [--kill-mode=cycle|exit70|sigkill|hang|none]
//             [--threads=N] [--batch-size=N] [--out=events.jsonl]
//             [--durable] [--fleet-durable-dir=PATH]
//
// Starts the fleet, drives it with the fleet load generator, and — when
// --kill-every-ms is set — murders one worker per interval in the chosen
// mode (cycle alternates exit70 -> sigkill -> hang). At the end it prints
// the per-worker table plus the zero-loss ledger, and exits nonzero when
// any request was lost (quarantine aside, that must never happen).
//
// With --durable the workers host minikv shards (AOF, group commit by
// default — one barrier retires a whole batch of acks; --group-commit-max=0
// falls back to fsync=always — durable state host-backed under
// --fleet-durable-dir) and the load is
// unique SET commands. After the run every shard is recovered from its
// host directory by a fresh instance — the same path a restarted worker
// takes — and every acked SET is read back: an acked write missing after
// recovery fails the run (docs/DURABILITY.md).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "apps/supervisor.h"
#include "obs/cli.h"
#include "workload/fleet.h"

namespace {

long long flag_value(int* argc, char** argv, const char* flag,
                     long long fallback) {
  const std::size_t len = std::strlen(flag);
  long long value = fallback;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      value = std::atoll(argv[i] + len + 1);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return value;
}

std::string flag_string(int* argc, char** argv, const char* flag,
                        std::string fallback) {
  const std::size_t len = std::strlen(flag);
  std::string value = std::move(fallback);
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      value = argv[i] + len + 1;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  const long long duration_ms = flag_value(&argc, argv, "--duration-ms", 3000);
  const long long kill_every_ms =
      flag_value(&argc, argv, "--kill-every-ms", 0);
  const long long threads = flag_value(&argc, argv, "--threads", 4);
  const long long batch_size = flag_value(&argc, argv, "--batch-size", 8);
  const std::string kill_mode =
      flag_string(&argc, argv, "--kill-mode", "cycle");
  const std::string out_path = flag_string(&argc, argv, "--out", "");
  bool durable = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--durable") == 0) {
        durable = true;
        continue;
      }
      argv[out++] = argv[i];
    }
    argc = out;
  }
  if (argc > 1) {
    std::fprintf(stderr, "fir_fleet: unknown argument %s\n%s", argv[1],
                 fir::obs::cli_flags_help());
    return 2;
  }

  fir::fleet::FleetConfig config = fir::fleet::FleetConfig::from_env();
  config.event_log_path = out_path;
  config.durable = config.durable || durable;
  fir::fleet::FleetSupervisor fleet(config);
  if (!fleet.start()) {
    std::fprintf(stderr, "fir_fleet: failed to start fleet\n");
    return 1;
  }

  bool chaos_stop = false;
  std::thread chaos;
  if (kill_every_ms > 0 && kill_mode != "none") {
    chaos = std::thread([&] {
      int victim = 0;
      int mode_cursor = 0;
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(duration_ms);
      while (!chaos_stop && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(kill_every_ms));
        fir::fleet::KillMode mode = fir::fleet::KillMode::kExit70;
        if (kill_mode == "sigkill") {
          mode = fir::fleet::KillMode::kSigkill;
        } else if (kill_mode == "hang") {
          mode = fir::fleet::KillMode::kHang;
        } else if (kill_mode == "cycle") {
          const fir::fleet::KillMode cycle[] = {
              fir::fleet::KillMode::kExit70, fir::fleet::KillMode::kSigkill,
              fir::fleet::KillMode::kHang};
          mode = cycle[mode_cursor++ % 3];
        }
        fleet.kill_worker(victim++ % fleet.worker_count(), mode);
      }
    });
  }

  fir::FleetLoadSpec spec;
  spec.threads = static_cast<int>(threads);
  spec.batch_size = static_cast<int>(batch_size);
  spec.duration_ms = static_cast<int>(duration_ms);
  fir::FleetLoadResult http_result;
  fir::FleetKvLoadResult kv_result;
  if (config.durable) {
    kv_result = fir::run_fleet_kv_load(fleet, spec);
  } else {
    http_result = fir::run_fleet_http_load(fleet, spec);
  }

  chaos_stop = true;
  if (chaos.joinable()) chaos.join();

  // Let stragglers restart so the final table shows the recovered fleet.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  const fir::fleet::FleetCounters c = fleet.counters();
  std::printf("fleet: %d workers%s\n", fleet.worker_count(),
              config.durable ? " (durable minikv shards)" : "");
  std::printf("%-8s %-6s %-6s\n", "worker", "up", "shard");
  for (int i = 0; i < fleet.worker_count(); ++i) {
    std::printf("%-8d %-6s %-6d\n", i, fleet.worker_up(i) ? "yes" : "no",
                fleet.shard_owner(i));
  }
  std::printf(
      "events: spawns=%llu deaths=%llu (exit70=%llu signal=%llu hang=%llu) "
      "restarts=%llu quarantines=%llu drains=%llu requeues=%llu\n",
      static_cast<unsigned long long>(c.spawns),
      static_cast<unsigned long long>(c.deaths),
      static_cast<unsigned long long>(c.exit70_deaths),
      static_cast<unsigned long long>(c.signal_deaths),
      static_cast<unsigned long long>(c.hang_deaths),
      static_cast<unsigned long long>(c.restarts),
      static_cast<unsigned long long>(c.quarantines),
      static_cast<unsigned long long>(c.drains),
      static_cast<unsigned long long>(c.requeues));

  if (config.durable) {
    const std::string durable_dir = fleet.durable_dir();
    std::printf(
        "load: requests=%llu acked=%llu errors=%llu unanswered=%llu "
        "lost=%llu\n",
        static_cast<unsigned long long>(kv_result.requests),
        static_cast<unsigned long long>(kv_result.acked),
        static_cast<unsigned long long>(kv_result.errors),
        static_cast<unsigned long long>(kv_result.unanswered),
        static_cast<unsigned long long>(kv_result.lost));
    fleet.stop();
    // The durability audit: recover every shard from host media and hold
    // the fleet to its acks.
    const fir::FleetDurabilityAudit audit =
        fir::audit_fleet_durability(durable_dir, kv_result.acked_sets);
    std::printf("audit: dir=%s checked=%llu missing=%llu\n",
                durable_dir.c_str(),
                static_cast<unsigned long long>(audit.checked),
                static_cast<unsigned long long>(audit.missing));
    for (const std::string& example : audit.examples)
      std::printf("audit: LOST %s\n", example.c_str());
    if (kv_result.lost != 0 || audit.missing != 0) {
      std::fprintf(stderr,
                   "fir_fleet: FAILED — %llu requests lost, %llu acked "
                   "writes missing after recovery\n",
                   static_cast<unsigned long long>(kv_result.lost),
                   static_cast<unsigned long long>(audit.missing));
      return 1;
    }
    return 0;
  }

  std::printf(
      "load: requests=%llu answered=%llu (2xx=%llu 4xx=%llu 5xx=%llu) "
      "lost=%llu\n",
      static_cast<unsigned long long>(http_result.requests),
      static_cast<unsigned long long>(http_result.answered()),
      static_cast<unsigned long long>(http_result.responses_2xx),
      static_cast<unsigned long long>(http_result.responses_4xx),
      static_cast<unsigned long long>(http_result.responses_5xx),
      static_cast<unsigned long long>(http_result.lost));
  fleet.stop();
  if (http_result.lost != 0) {
    std::fprintf(stderr, "fir_fleet: FAILED — %llu requests lost\n",
                 static_cast<unsigned long long>(http_result.lost));
    return 1;
  }
  return 0;
}
