#!/usr/bin/env python3
"""Render a fir_campaign results.jsonl into Markdown matrices.

The aggregation stage of the campaign pipeline (docs/CAMPAIGNS.md),
reimplemented over the saved run records so reports are regenerable
without re-running a single experiment:

    tools/campaign_report.py /tmp/table4/results.jsonl --out report.md

Matches the C++ aggregator (src/campaign/aggregate.cpp) cell for cell;
the golden-file test pins the two together. --require asserts a summed
counter is nonzero (CI smoke gate):

    tools/campaign_report.py results.jsonl --require recovered \
        --require diversions

Stdlib only.
"""

import argparse
import json
import sys

FAIL_STOP_FAULTS = {"persistent-crash", "transient-crash", "real-crash"}

PAPER_NAMES = {
    "miniginx": "Nginx",
    "apachette": "Apache",
    "littlehttpd": "Lighttpd",
    "minikv": "Redis",
    "minipg": "PostgreSQL",
}

CELL_COUNTERS = (
    "injected",
    "triggered",
    "crashed",
    "recovered",
    "fatal",
    "double_faults",
    "worker_deaths",
    "diversions",
    "retries",
)


def load_records(path):
    records = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{number}: bad record: {err}")
    return records


def new_cell():
    return {name: 0 for name in CELL_COUNTERS}


def aggregate(records):
    """Folds records into ((server, policy, fault) -> cell, baselines)."""
    cells = {}
    baselines = {}
    for record in records:
        server = record.get("server", "?")
        policy = record.get("policy", "?")
        if record.get("kind") == "baseline":
            cell = baselines.setdefault((server, policy), {"runs": 0, "ok": 0})
            cell["runs"] += 1
            if record.get("outcome") == "baseline-ok":
                cell["ok"] += 1
            continue
        key = (server, policy, record.get("fault", "?"))
        cell = cells.setdefault(key, new_cell())
        cell["injected"] += 1
        for flag, counter in (
            ("triggered", "triggered"),
            ("crashed", "crashed"),
            ("recovered", "recovered"),
            ("fatal", "fatal"),
            ("double_fault", "double_faults"),
        ):
            if record.get(flag):
                cell[counter] += 1
        if record.get("outcome") in ("worker-died", "lost-record"):
            cell["worker_deaths"] += 1
        cell["diversions"] += int(record.get("diversions", 0))
        cell["retries"] += int(record.get("retries", 0))
    return cells, baselines


def fail_stop_rows(cells):
    rows = {}
    for (server, policy, fault), cell in cells.items():
        if fault not in FAIL_STOP_FAULTS:
            continue
        row = rows.setdefault((server, policy), new_cell())
        for name in CELL_COUNTERS:
            row[name] += cell[name]
    return rows


def survivability(cell):
    return cell["recovered"] / cell["crashed"] if cell["crashed"] else 1.0


def markdown_table(header, rows):
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines += ["| " + " | ".join(str(v) for v in row) + " |" for row in rows]
    return "\n".join(lines)


def render(records):
    cells, baselines = aggregate(records)
    out = ["## Table IV (fail-stop survivability)", ""]
    rows = []
    for (server, policy), row in fail_stop_rows(cells).items():
        rows.append([
            PAPER_NAMES.get(server, server), policy, row["injected"],
            row["triggered"], row["crashed"], row["recovered"], row["fatal"],
            f"{survivability(row):.1%}",
        ])
    out.append(markdown_table(
        ["Server", "Policy", "Injected", "Triggered", "Crashed", "Recovered",
         "Fatal", "Survivability"], rows))
    out += ["", "## Per-fault matrix", ""]
    rows = []
    for (server, policy, fault), cell in cells.items():
        rows.append([
            server, policy, fault, cell["injected"], cell["triggered"],
            cell["crashed"], cell["recovered"], cell["fatal"],
            cell["double_faults"], cell["diversions"], cell["retries"],
            f"{survivability(cell):.1%}",
        ])
    out.append(markdown_table(
        ["Server", "Policy", "Fault", "Inj", "Trig", "Crash", "Recov",
         "Fatal", "DblF", "Divert", "Retry", "Surv"], rows))
    if baselines:
        out += ["", "## Baselines", ""]
        rows = [[server, policy, cell["runs"], cell["ok"]]
                for (server, policy), cell in baselines.items()]
        out.append(markdown_table(["Server", "Policy", "Runs", "OK"], rows))
    out.append("")
    return "\n".join(out), cells


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="results.jsonl from fir_campaign")
    parser.add_argument("--out", help="write Markdown here (default stdout)")
    parser.add_argument(
        "--require", action="append", default=[], metavar="COUNTER",
        choices=sorted(CELL_COUNTERS),
        help="fail unless this counter is nonzero summed over all cells")
    args = parser.parse_args()

    records = load_records(args.results)
    if not records:
        raise SystemExit(f"{args.results}: no records")
    markdown, cells = render(records)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(markdown)
    else:
        sys.stdout.write(markdown)

    failed = False
    for counter in args.require:
        total = sum(cell[counter] for cell in cells.values())
        if total == 0:
            print(f"REQUIRE FAILED: {counter} is zero across all cells",
                  file=sys.stderr)
            failed = True
        else:
            print(f"require {counter}: {total}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
