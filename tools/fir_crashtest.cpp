// fir_crashtest: the exhaustive crash-point consistency harness
// (docs/DURABILITY.md).
//
//   fir_crashtest --server all --workers 8 --out /tmp/crash.jsonl
//   fir_crashtest --server minikv --torn 5 --flip --require
//
// records every persistence point of a fixed mutation script against the
// named durable server, then re-runs the script once per point with a
// crash image captured at exactly that write-back instant (optionally with
// a torn final write), recovers a fresh instance from each image and
// checks acked-durable, prefix-consistency and replay-idempotence. Emits
// one JSONL line per crash point and exits non-zero when any invariant
// fails; --require additionally fails an empty matrix.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "crashtest/harness.h"

namespace {

constexpr const char kUsage[] =
    "usage: fir_crashtest [options]\n"
    "\n"
    "options:\n"
    "  --server NAME       minikv, minipg or all (default: all)\n"
    "  --policy NAME       always, batch or no (default: always); batch\n"
    "                      keeps acked-durable only with --group-commit\n"
    "  --group-commit N    defer up to N acks per barrier (0 = off)\n"
    "  --torn N        keep N unsynced tail bytes in every crash image\n"
    "  --flip          flip one bit in the torn tail (with --torn)\n"
    "  --workers N     forked crash-point runs in flight (default 4;\n"
    "                  0 = run every point in-process)\n"
    "  --out PATH      write the JSONL matrix to PATH (default: stdout)\n"
    "  --require       fail when the matrix is empty (CI gate)\n"
    "  --quiet         suppress per-point progress on stderr\n";

int fail_usage(const char* message) {
  std::fprintf(stderr, "fir_crashtest: %s\n\n%s", message, kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string server = "all";
  std::string out_path;
  fir::crashtest::CrashTestOptions options;
  options.workers = 4;
  options.verbose = true;
  bool require = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fir_crashtest: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--server") {
      server = value("--server");
    } else if (arg == "--policy") {
      const std::string policy = value("--policy");
      if (policy == "always") {
        options.policy = fir::FsyncPolicy::kAlways;
      } else if (policy == "batch") {
        options.policy = fir::FsyncPolicy::kBatch;
      } else if (policy == "no") {
        options.policy = fir::FsyncPolicy::kNo;
      } else {
        return fail_usage(("unknown policy " + policy).c_str());
      }
    } else if (arg == "--group-commit") {
      options.group_commit_max = static_cast<std::uint32_t>(
          std::strtoul(value("--group-commit"), nullptr, 10));
    } else if (arg == "--torn") {
      options.torn_tail_bytes =
          static_cast<std::size_t>(std::strtoul(value("--torn"), nullptr, 10));
    } else if (arg == "--flip") {
      options.torn_bit_flip = true;
    } else if (arg == "--workers") {
      options.workers =
          static_cast<int>(std::strtol(value("--workers"), nullptr, 10));
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg == "--require") {
      require = true;
    } else if (arg == "--quiet") {
      options.verbose = false;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      return fail_usage(("unknown argument " + arg).c_str());
    }
  }

  std::vector<std::string> servers;
  if (server == "all") {
    servers = {"minikv", "minipg"};
  } else if (server == "minikv" || server == "minipg") {
    servers = {server};
  } else {
    return fail_usage(("unknown server " + server).c_str());
  }

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::trunc);
    if (!out_file) {
      std::fprintf(stderr, "fir_crashtest: cannot write %s\n",
                   out_path.c_str());
      return 2;
    }
  }
  std::ostream& out = out_path.empty()
                          ? static_cast<std::ostream&>(std::cout)
                          : out_file;

  bool all_passed = true;
  std::size_t total_points = 0;
  for (const std::string& name : servers) {
    options.server = name;
    const fir::crashtest::CrashTestReport report =
        fir::crashtest::run_crash_test(options);
    for (const fir::crashtest::CrashPointResult& point : report.points) {
      out << fir::crashtest::result_jsonl(options, point) << '\n';
      if (!point.ok) {
        std::fprintf(stderr,
                     "fir_crashtest: %s crash op %llu FAILED: %s\n",
                     name.c_str(),
                     static_cast<unsigned long long>(point.crash_op),
                     point.detail.c_str());
      }
    }
    total_points += report.points.size();
    all_passed = all_passed && report.passed;
    std::fprintf(stderr,
                 "fir_crashtest: %s: %zu crash points, %zu mutations, "
                 "policy=%s gc=%u torn=%zu%s: %s\n",
                 name.c_str(), report.points.size(), report.mutations,
                 fir::fsync_policy_name(options.policy),
                 options.group_commit_max, options.torn_tail_bytes,
                 options.torn_bit_flip ? "+flip" : "",
                 report.passed ? "PASS" : "FAIL");
  }
  if (require && total_points == 0) {
    std::fprintf(stderr, "fir_crashtest: empty matrix\n");
    return 1;
  }
  return all_passed ? 0 : 1;
}
