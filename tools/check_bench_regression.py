#!/usr/bin/env python3
"""Gate the checkpoint fast-path benchmarks against the checked-in baseline.

Usage:
    check_bench_regression.py RESULTS_JSON [--baseline BENCH_tx_begin.json]
                              [--tolerance 0.25] [--absolute]
    check_bench_regression.py RESULTS_JSON --serving
                              [--baseline BENCH_serving.json]
                              [--tolerance 0.25]
    check_bench_regression.py RESULTS_JSON --durable
                              [--baseline BENCH_durable.json]

Default mode: RESULTS_JSON is a google-benchmark --benchmark_format=json run
of bench/micro_checkpoint covering the BM_TxBeginQuiescent* benchmarks.

--serving mode: RESULTS_JSON is a bench/serving_throughput report. The gates
are again machine-independent ratios from within one run:

  * gated-arm overhead — for each recovery-mode arm (htm-only, stm-only,
    adaptive, adaptive-no-coalesce), requests_per_second relative to the
    unprotected arm must not fall more than `tolerance` below the same
    ratio in the baseline file;
  * keepalive win — unprotected vs close-per-request throughput must stay
    at or above the baseline's `min_keepalive_win` floor (the fast path's
    reason to exist);
  * correctness backstop — every arm must finish with zero transport
    failures (a lost or unanswered request under clean load is a serving
    bug, not noise).

--durable mode: RESULTS_JSON is a bench/durable_throughput report. All
gates are within-run ratios plus a correctness backstop:

  * barrier scaling — bytes_synced per barrier in the LAST append stage
    divided by the FIRST must stay at or below the baseline's
    `max_bytes_per_barrier_growth` (incremental barriers make the per-
    barrier cost the appended delta, independent of log size; a
    regression to full-image copies makes the last stage pay for the
    whole AOF and the ratio explode);
  * group-commit win — ops_per_virtual_sec of the group-commit arm over
    the always arm must stay at or above `min_group_commit_win` (the
    virtual clock prices fsync at ~33x a plain syscall, so the ratio
    isolates barrier count);
  * correctness backstop — every arm must report lost_acked == 0: a SET
    whose ack the client read must be present after recovery from a
    clean crash image, group commit included.

The primary check is machine-independent: for each frame variant, the
amortization ratio

    cpu_time(coalesced arm) / cpu_time(per-call arm)

is compared against the same ratio computed from `baseline_cpu_ns` in the
baseline file. Both arms come from the same run on the same machine, so
absolute hardware speed cancels; what the gate protects is the *relative win*
of coalescing. A fresh ratio more than `tolerance` above the baseline ratio
(the coalesced arm got slower relative to the per-call arm) fails the gate.

--absolute additionally compares each benchmark's absolute cpu_time against
baseline_cpu_ns with the same tolerance. Only meaningful when the run machine
matches the machine that produced the baseline, so it is off by default and
not used in CI.
"""

import argparse
import json
import sys

# (per-call arm, coalesced arm) pairs gated on their ratio.
RATIO_PAIRS = [
    ("BM_TxBeginQuiescent/1", "BM_TxBeginQuiescent/8"),
    ("BM_TxBeginQuiescent/1", "BM_TxBeginQuiescent/64"),
    ("BM_TxBeginQuiescentDeep/1", "BM_TxBeginQuiescentDeep/8"),
    ("BM_TxBeginQuiescentDeep/1", "BM_TxBeginQuiescentDeep/64"),
]


def load_results(path):
    """name -> median (or single-run) cpu_time in ns."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        # Prefer the _median aggregate when repetitions are on.
        if b.get("aggregate_name") == "median":
            times[b["run_name"]] = float(b["cpu_time"])
        elif b.get("run_type", "iteration") == "iteration":
            times.setdefault(name, float(b["cpu_time"]))
    return times


# Arms whose throughput-vs-unprotected ratio is gated in --serving mode.
SERVING_GATED_ARMS = [
    "htm-only",
    "stm-only",
    "adaptive",
    "adaptive-no-coalesce",
]


def check_serving(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.results) as f:
        fresh = json.load(f)
    base_arms = baseline["arms"]
    arms = fresh["arms"]

    failures = []

    missing = [a for a in ["unprotected", "close-per-request"] +
               SERVING_GATED_ARMS if a not in arms]
    if missing:
        for m in missing:
            failures.append("missing arm in results: %s" % m)
        arms = {}

    if arms:
        unprotected = float(arms["unprotected"]["requests_per_second"])
        base_unprotected = float(
            base_arms["unprotected"]["requests_per_second"])

        for name in SERVING_GATED_ARMS:
            ratio = float(arms[name]["requests_per_second"]) / unprotected
            base_ratio = (float(base_arms[name]["requests_per_second"]) /
                          base_unprotected)
            limit = base_ratio * (1.0 - args.tolerance)
            verdict = "FAIL" if ratio < limit else "ok"
            print("%-36s ratio %.3f (baseline %.3f, limit %.3f)  %s"
                  % (name + " / unprotected", ratio, base_ratio, limit,
                     verdict))
            if ratio < limit:
                failures.append(
                    "%s overhead regressed: %.3f < %.3f"
                    % (name, ratio, limit))

        win = unprotected / float(
            arms["close-per-request"]["requests_per_second"])
        floor = float(baseline.get("min_keepalive_win", 2.0))
        verdict = "FAIL" if win < floor else "ok"
        print("%-36s ratio %.3f (floor %.3f)                  %s"
              % ("unprotected / close-per-request", win, floor, verdict))
        if win < floor:
            failures.append(
                "keepalive+pipelining win collapsed: %.3fx < %.3fx"
                % (win, floor))

        for name, arm in sorted(arms.items()):
            xfail = int(arm.get("transport_failures", 0))
            if xfail != 0:
                failures.append(
                    "%s lost %d request(s) under clean load" % (name, xfail))

    if failures:
        print("\nREGRESSION GATE FAILED:", file=sys.stderr)
        for f in failures:
            print("  - " + f, file=sys.stderr)
        return 1
    print("\nserving regression gate passed (tolerance %.0f%%)"
          % (args.tolerance * 100))
    return 0


def check_durable(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.results) as f:
        fresh = json.load(f)

    failures = []

    stages = fresh.get("barrier_scaling", [])
    if len(stages) < 2:
        failures.append("need >= 2 barrier_scaling stages, got %d"
                        % len(stages))
    else:
        first = float(stages[0]["bytes_per_barrier"])
        last = float(stages[-1]["bytes_per_barrier"])
        growth = last / first if first > 0 else float("inf")
        ceiling = float(baseline.get("max_bytes_per_barrier_growth", 2.0))
        verdict = "FAIL" if growth > ceiling else "ok"
        print("%-36s ratio %.3f (ceiling %.3f)                %s"
              % ("bytes/barrier last / first stage", growth, ceiling,
                 verdict))
        if growth > ceiling:
            failures.append(
                "per-barrier cost grows with the log: %.3fx > %.3fx "
                "(fsync is copying the image, not the delta)"
                % (growth, ceiling))

    arms = fresh.get("arms", {})
    missing = [a for a in ("always", "group-commit") if a not in arms]
    for m in missing:
        failures.append("missing arm in results: %s" % m)
    if not missing:
        always = float(arms["always"]["ops_per_virtual_sec"])
        grouped = float(arms["group-commit"]["ops_per_virtual_sec"])
        win = grouped / always if always > 0 else 0.0
        floor = float(baseline.get("min_group_commit_win", 3.0))
        verdict = "FAIL" if win < floor else "ok"
        print("%-36s ratio %.3f (floor %.3f)                  %s"
              % ("group-commit / always throughput", win, floor, verdict))
        if win < floor:
            failures.append(
                "group-commit win collapsed: %.3fx < %.3fx" % (win, floor))

    for name, arm in sorted(arms.items()):
        lost = int(arm.get("lost_acked", 0))
        if lost != 0:
            failures.append(
                "%s arm lost %d acked write(s) across recovery" % (name, lost))

    if failures:
        print("\nREGRESSION GATE FAILED:", file=sys.stderr)
        for f in failures:
            print("  - " + f, file=sys.stderr)
        return 1
    print("\ndurable regression gate passed")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("results")
    ap.add_argument("--baseline", default=None)
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument("--absolute", action="store_true")
    ap.add_argument("--serving", action="store_true")
    ap.add_argument("--durable", action="store_true")
    args = ap.parse_args()

    if args.serving:
        if args.baseline is None:
            args.baseline = "BENCH_serving.json"
        return check_serving(args)
    if args.durable:
        if args.baseline is None:
            args.baseline = "BENCH_durable.json"
        return check_durable(args)
    if args.baseline is None:
        args.baseline = "BENCH_tx_begin.json"

    with open(args.baseline) as f:
        baseline = json.load(f)["baseline_cpu_ns"]
    fresh = load_results(args.results)

    failures = []

    for per_call, coalesced in RATIO_PAIRS:
        missing = [n for n in (per_call, coalesced) if n not in fresh]
        if missing:
            failures.append("missing benchmark(s) in results: %s" % missing)
            continue
        base_ratio = baseline[coalesced] / baseline[per_call]
        new_ratio = fresh[coalesced] / fresh[per_call]
        limit = base_ratio * (1.0 + args.tolerance)
        verdict = "FAIL" if new_ratio > limit else "ok"
        print(
            "%-52s ratio %.3f (baseline %.3f, limit %.3f)  %s"
            % (coalesced + " / " + per_call, new_ratio, base_ratio, limit,
               verdict)
        )
        if new_ratio > limit:
            failures.append(
                "%s amortization regressed: %.3f > %.3f"
                % (coalesced, new_ratio, limit)
            )

    if args.absolute:
        for name, base_ns in sorted(baseline.items()):
            if name not in fresh:
                failures.append("missing benchmark in results: %s" % name)
                continue
            limit = base_ns * (1.0 + args.tolerance)
            verdict = "FAIL" if fresh[name] > limit else "ok"
            print(
                "%-52s %8.1f ns (baseline %8.1f, limit %8.1f)  %s"
                % (name, fresh[name], base_ns, limit, verdict)
            )
            if fresh[name] > limit:
                failures.append(
                    "%s regressed: %.1f ns > %.1f ns"
                    % (name, fresh[name], limit)
                )

    if failures:
        print("\nREGRESSION GATE FAILED:", file=sys.stderr)
        for f in failures:
            print("  - " + f, file=sys.stderr)
        return 1
    print("\nregression gate passed (tolerance %.0f%%)" % (args.tolerance * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
